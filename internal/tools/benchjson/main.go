// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout (the Makefile's bench target pipes through it to write
// BENCH_observability.json). Each benchmark line is kept verbatim in "raw",
// so `jq -r '.benchmarks[].raw'` reconstructs a benchstat-compatible input,
// alongside the parsed ns/op, B/op, and allocs/op.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
)

// benchLine matches the fixed prefix of a benchmark result line; the metric
// pairs ("67264 ns/op", "20 allocs/op") are picked up separately.
var (
	benchLine = regexp.MustCompile(`^(Benchmark\S+)\s+(\d+)\s+(.*)$`)
	metric    = regexp.MustCompile(`([\d.]+)\s+(\S+)`)
)

type result struct {
	Name string `json:"name"`
	Iter int64  `json:"iterations"`
	// NsPerOp, BytesPerOp, and AllocsPerOp are 0 when the line did not
	// report that metric.
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
	Raw         string  `json:"raw"`
}

type document struct {
	// Goos/Goarch/Pkg/CPU echo the go test preamble when present.
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	Pkg        string   `json:"pkg,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []result `json:"benchmarks"`
}

func main() {
	if err := run(os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func run(in io.Reader, out io.Writer) error {
	var doc document
	preamble := map[string]*string{
		"goos: ": &doc.Goos, "goarch: ": &doc.Goarch,
		"pkg: ": &doc.Pkg, "cpu: ": &doc.CPU,
	}
	sc := bufio.NewScanner(in)
	for sc.Scan() {
		line := sc.Text()
		for prefix, dst := range preamble {
			if len(line) > len(prefix) && line[:len(prefix)] == prefix {
				*dst = line[len(prefix):]
			}
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		iter, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		r := result{Name: m[1], Iter: iter, Raw: line}
		for _, pair := range metric.FindAllStringSubmatch(m[3], -1) {
			v, err := strconv.ParseFloat(pair[1], 64)
			if err != nil {
				continue
			}
			switch pair[2] {
			case "ns/op":
				r.NsPerOp = v
			case "B/op":
				r.BytesPerOp = v
			case "allocs/op":
				r.AllocsPerOp = v
			}
		}
		doc.Benchmarks = append(doc.Benchmarks, r)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark lines on stdin")
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

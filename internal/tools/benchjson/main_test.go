package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const goldenInput = `goos: linux
goarch: amd64
pkg: netags/internal/core
cpu: Intel(R) Xeon(R) CPU
BenchmarkSession/n=1000-8         	     100	     67264 ns/op	   12288 B/op	      20 allocs/op
BenchmarkSession/n=10000-8        	      10	    912345 ns/op
some unrelated chatter
BenchmarkDirect-8                 	 5000000	       231.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	netags/internal/core	4.2s
`

func TestRunGolden(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(goldenInput), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" ||
		doc.Pkg != "netags/internal/core" || doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("preamble mis-parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3 (chatter and PASS/ok lines must be skipped)", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkSession/n=1000-8" || first.Iter != 100 ||
		first.NsPerOp != 67264 || first.BytesPerOp != 12288 || first.AllocsPerOp != 20 {
		t.Errorf("first benchmark mis-parsed: %+v", first)
	}
	if second := doc.Benchmarks[1]; second.NsPerOp != 912345 || second.BytesPerOp != 0 || second.AllocsPerOp != 0 {
		t.Errorf("metrics absent from the line must stay zero: %+v", second)
	}
	if third := doc.Benchmarks[2]; third.Name != "BenchmarkDirect-8" || third.NsPerOp != 231.5 {
		t.Errorf("fractional ns/op mis-parsed: %+v", third)
	}
	for i, b := range doc.Benchmarks {
		if !strings.Contains(goldenInput, b.Raw) || !strings.HasPrefix(b.Raw, "Benchmark") {
			t.Errorf("benchmark %d: raw line not preserved verbatim: %q", i, b.Raw)
		}
	}
}

func TestRunMalformed(t *testing.T) {
	t.Run("empty input", func(t *testing.T) {
		var out strings.Builder
		err := run(strings.NewReader(""), &out)
		if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
			t.Fatalf("want the no-benchmark-lines error, got %v", err)
		}
	})
	t.Run("no benchmark lines", func(t *testing.T) {
		var out strings.Builder
		if err := run(strings.NewReader("PASS\nok pkg 1.0s\n"), &out); err == nil {
			t.Fatal("want an error when nothing parses")
		}
	})
	t.Run("iteration overflow", func(t *testing.T) {
		var out strings.Builder
		line := "BenchmarkX-8\t99999999999999999999999999\t5 ns/op\n"
		err := run(strings.NewReader(line), &out)
		if err == nil || !strings.Contains(err.Error(), "BenchmarkX") {
			t.Fatalf("want a parse error naming the line, got %v", err)
		}
	})
	t.Run("garbage metrics are skipped not fatal", func(t *testing.T) {
		var out strings.Builder
		if err := run(strings.NewReader("BenchmarkY-8\t10\tgibberish\n"), &out); err != nil {
			t.Fatalf("unparseable metric tail must not be fatal: %v", err)
		}
		var doc document
		if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
			t.Fatal(err)
		}
		if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].NsPerOp != 0 {
			t.Errorf("want one benchmark with zero metrics, got %+v", doc.Benchmarks)
		}
	})
}

package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const goldenInput = `goos: linux
goarch: amd64
pkg: netags/internal/core
cpu: Intel(R) Xeon(R) CPU
BenchmarkSession/n=1000-8         	     100	     67264 ns/op	   12288 B/op	      20 allocs/op
BenchmarkSession/n=10000-8        	      10	    912345 ns/op
some unrelated chatter
BenchmarkDirect-8                 	 5000000	       231.5 ns/op	       0 B/op	       0 allocs/op
PASS
ok  	netags/internal/core	4.2s
`

func TestRunGolden(t *testing.T) {
	var out strings.Builder
	if err := run(strings.NewReader(goldenInput), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatalf("output is not valid JSON: %v", err)
	}
	if doc.Goos != "linux" || doc.Goarch != "amd64" ||
		doc.Pkg != "netags/internal/core" || doc.CPU != "Intel(R) Xeon(R) CPU" {
		t.Errorf("preamble mis-parsed: %+v", doc)
	}
	if len(doc.Benchmarks) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3 (chatter and PASS/ok lines must be skipped)", len(doc.Benchmarks))
	}
	first := doc.Benchmarks[0]
	if first.Name != "BenchmarkSession/n=1000-8" || first.Iter != 100 ||
		first.NsPerOp != 67264 || first.BytesPerOp != 12288 || first.AllocsPerOp != 20 {
		t.Errorf("first benchmark mis-parsed: %+v", first)
	}
	if second := doc.Benchmarks[1]; second.NsPerOp != 912345 || second.BytesPerOp != 0 || second.AllocsPerOp != 0 {
		t.Errorf("metrics absent from the line must stay zero: %+v", second)
	}
	if third := doc.Benchmarks[2]; third.Name != "BenchmarkDirect-8" || third.NsPerOp != 231.5 {
		t.Errorf("fractional ns/op mis-parsed: %+v", third)
	}
	for i, b := range doc.Benchmarks {
		if !strings.Contains(goldenInput, b.Raw) || !strings.HasPrefix(b.Raw, "Benchmark") {
			t.Errorf("benchmark %d: raw line not preserved verbatim: %q", i, b.Raw)
		}
	}
}

func TestRunMalformed(t *testing.T) {
	t.Run("empty input", func(t *testing.T) {
		var out strings.Builder
		err := run(strings.NewReader(""), &out)
		if err == nil || !strings.Contains(err.Error(), "no benchmark lines") {
			t.Fatalf("want the no-benchmark-lines error, got %v", err)
		}
	})
	t.Run("no benchmark lines", func(t *testing.T) {
		var out strings.Builder
		if err := run(strings.NewReader("PASS\nok pkg 1.0s\n"), &out); err == nil {
			t.Fatal("want an error when nothing parses")
		}
	})
	t.Run("iteration overflow", func(t *testing.T) {
		var out strings.Builder
		line := "BenchmarkX-8\t99999999999999999999999999\t5 ns/op\n"
		err := run(strings.NewReader(line), &out)
		if err == nil || !strings.Contains(err.Error(), "BenchmarkX") {
			t.Fatalf("want a parse error naming the line, got %v", err)
		}
	})
	t.Run("garbage metrics are skipped not fatal", func(t *testing.T) {
		var out strings.Builder
		if err := run(strings.NewReader("BenchmarkY-8\t10\tgibberish\n"), &out); err != nil {
			t.Fatalf("unparseable metric tail must not be fatal: %v", err)
		}
		var doc document
		if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
			t.Fatal(err)
		}
		if len(doc.Benchmarks) != 1 || doc.Benchmarks[0].NsPerOp != 0 {
			t.Errorf("want one benchmark with zero metrics, got %+v", doc.Benchmarks)
		}
	})
}

func TestSummaryRollup(t *testing.T) {
	input := `BenchmarkHot-8	100	100 ns/op	64 B/op	2 allocs/op
BenchmarkHot-8	100	200 ns/op	64 B/op	2 allocs/op
BenchmarkHot-8	100	300 ns/op	64 B/op	2 allocs/op
BenchmarkCold	10	5000 ns/op
`
	var out strings.Builder
	if err := run(strings.NewReader(input), &out); err != nil {
		t.Fatal(err)
	}
	var doc document
	if err := json.Unmarshal([]byte(out.String()), &doc); err != nil {
		t.Fatal(err)
	}
	if len(doc.Summary) != 2 {
		t.Fatalf("want 2 summaries, got %+v", doc.Summary)
	}
	hot := doc.Summary[0]
	if hot.Name != "BenchmarkHot" {
		t.Errorf("GOMAXPROCS suffix not stripped: %q", hot.Name)
	}
	if hot.Runs != 3 || hot.NsPerOp.Mean != 200 || hot.NsPerOp.Min != 100 || hot.NsPerOp.Max != 300 {
		t.Errorf("ns rollup wrong: %+v", hot)
	}
	if hot.AllocsPerOp.Mean != 2 || hot.BytesPerOp.Mean != 64 {
		t.Errorf("bytes/allocs rollup wrong: %+v", hot)
	}
	if cold := doc.Summary[1]; cold.Name != "BenchmarkCold" || cold.Runs != 1 || cold.NsPerOp.Mean != 5000 {
		t.Errorf("single-run summary wrong: %+v", cold)
	}
}

// writeBaseline stores a benchjson document for compare tests; using run()
// itself keeps the fixture in the exact shape `make bench` commits.
func writeBaseline(t *testing.T, benchOutput string) string {
	t.Helper()
	var out strings.Builder
	if err := run(strings.NewReader(benchOutput), &out); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "baseline.json")
	if err := os.WriteFile(path, []byte(out.String()), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const compareBaseline = `BenchmarkHot-8	100	100 ns/op	64 B/op	2 allocs/op
BenchmarkHot-8	100	120 ns/op	64 B/op	2 allocs/op
BenchmarkZeroAlloc-8	100	50 ns/op	0 B/op	0 allocs/op
`

func TestCompareWithinTolerance(t *testing.T) {
	base := writeBaseline(t, compareBaseline)
	// Means: Hot 110 ns, 2 allocs; ZeroAlloc 50 ns, 0 allocs. A 20% ns
	// increase and a 0-alloc flicker both sit inside the default gates.
	current := `BenchmarkHot-4	100	132 ns/op	64 B/op	2 allocs/op
BenchmarkZeroAlloc-4	100	55 ns/op	0 B/op	0 allocs/op
BenchmarkBrandNew-4	100	10 ns/op	0 B/op	0 allocs/op
`
	var out strings.Builder
	ok, err := runCompare([]string{"-baseline", base}, strings.NewReader(current), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("within-tolerance run flagged as regression:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "BenchmarkBrandNew") || !strings.Contains(out.String(), "not in baseline") {
		t.Errorf("new benchmark not reported:\n%s", out.String())
	}
}

func TestCompareNsRegression(t *testing.T) {
	base := writeBaseline(t, compareBaseline)
	// Hot mean 110 -> 200 ns/op is +82%, far beyond the 30% default.
	current := `BenchmarkHot-4	100	200 ns/op	64 B/op	2 allocs/op
BenchmarkZeroAlloc-4	100	50 ns/op	0 B/op	0 allocs/op
`
	var out strings.Builder
	ok, err := runCompare([]string{"-baseline", base}, strings.NewReader(current), &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("ns/op regression not caught:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL") || !strings.Contains(out.String(), "BenchmarkHot") {
		t.Errorf("failing benchmark not named:\n%s", out.String())
	}
}

func TestCompareAllocRegression(t *testing.T) {
	base := writeBaseline(t, compareBaseline)
	// Same speed, but the zero-alloc path now allocates: 0 -> 1 allocs/op
	// clears the absolute half-allocation slack and must fail.
	current := `BenchmarkHot-4	100	110 ns/op	64 B/op	2 allocs/op
BenchmarkZeroAlloc-4	100	50 ns/op	16 B/op	1 allocs/op
`
	var out strings.Builder
	ok, err := runCompare([]string{"-baseline", base}, strings.NewReader(current), &out)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatalf("alloc regression not caught:\n%s", out.String())
	}
}

func TestCompareToleranceFlag(t *testing.T) {
	base := writeBaseline(t, compareBaseline)
	current := `BenchmarkHot-4	100	200 ns/op	64 B/op	2 allocs/op
BenchmarkZeroAlloc-4	100	50 ns/op	0 B/op	0 allocs/op
`
	var out strings.Builder
	ok, err := runCompare([]string{"-baseline", base, "-tolerance", "1.0"},
		strings.NewReader(current), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("-tolerance 1.0 must admit a +82%% change:\n%s", out.String())
	}
}

func TestCompareMissingBenchmarkWarns(t *testing.T) {
	base := writeBaseline(t, compareBaseline)
	current := "BenchmarkHot-4	100	110 ns/op	64 B/op	2 allocs/op\n"
	var out strings.Builder
	ok, err := runCompare([]string{"-baseline", base}, strings.NewReader(current), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("a benchmark absent from the current run must warn, not fail:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "missing from current run") {
		t.Errorf("missing benchmark not warned about:\n%s", out.String())
	}
}

func TestCompareErrors(t *testing.T) {
	t.Run("baseline required", func(t *testing.T) {
		var out strings.Builder
		if _, err := runCompare(nil, strings.NewReader("x"), &out); err == nil {
			t.Fatal("missing -baseline accepted")
		}
	})
	t.Run("baseline unreadable", func(t *testing.T) {
		var out strings.Builder
		_, err := runCompare([]string{"-baseline", filepath.Join(t.TempDir(), "nope.json")},
			strings.NewReader("x"), &out)
		if err == nil {
			t.Fatal("unreadable baseline accepted")
		}
	})
	t.Run("baseline not benchjson", func(t *testing.T) {
		path := filepath.Join(t.TempDir(), "bad.json")
		os.WriteFile(path, []byte(`{"benchmarks":[]}`), 0o644)
		var out strings.Builder
		if _, err := runCompare([]string{"-baseline", path}, strings.NewReader("x"), &out); err == nil {
			t.Fatal("empty baseline accepted")
		}
	})
	t.Run("no current benchmarks", func(t *testing.T) {
		base := writeBaseline(t, compareBaseline)
		var out strings.Builder
		if _, err := runCompare([]string{"-baseline", base}, strings.NewReader("PASS\n"), &out); err == nil {
			t.Fatal("empty current input accepted")
		}
	})
}

// TestCompareBaselineWithoutSummary: documents written before the rollup
// existed carry only raw benchmarks; compare must summarize them on load.
func TestCompareBaselineWithoutSummary(t *testing.T) {
	legacy := `{"benchmarks":[
	  {"name":"BenchmarkHot-8","iterations":100,"ns_per_op":100,"allocs_per_op":2,"raw":"x"},
	  {"name":"BenchmarkHot-8","iterations":100,"ns_per_op":120,"allocs_per_op":2,"raw":"x"}]}`
	path := filepath.Join(t.TempDir(), "legacy.json")
	if err := os.WriteFile(path, []byte(legacy), 0o644); err != nil {
		t.Fatal(err)
	}
	current := "BenchmarkHot-4	100	112 ns/op	16 B/op	2 allocs/op\n"
	var out strings.Builder
	ok, err := runCompare([]string{"-baseline", path}, strings.NewReader(current), &out)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatalf("legacy baseline comparison failed:\n%s", out.String())
	}
}

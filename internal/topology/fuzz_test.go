package topology_test

import (
	"testing"

	"netags/internal/geom"
	"netags/internal/simtest"
	"netags/internal/topology"
)

// FuzzTopologyTiers feeds arbitrary byte-derived deployments to the
// grid-accelerated tier builder and checks it against simtest's O(n²)
// brute-force oracle. The grid index is the one piece of the topology layer
// with real room for cell-boundary bugs, and every protocol result rests on
// the tiers it produces.
func FuzzTopologyTiers(f *testing.F) {
	f.Add([]byte{128, 128, 200, 128, 60, 128, 128, 200}, uint64(0))
	f.Add([]byte{0, 0, 255, 255, 0, 255, 255, 0, 128, 128}, uint64(0x1234567))
	f.Add([]byte{140, 128, 152, 128, 164, 128, 176, 128, 188, 128}, uint64(31))
	f.Fuzz(func(t *testing.T, raw []byte, rangeBits uint64) {
		if len(raw) < 2 {
			return
		}
		if len(raw) > 96 {
			raw = raw[:96] // ≤48 tags keeps the quadratic oracle cheap
		}
		// Each coordinate byte maps to [-32, 31.75]: dense enough around the
		// ranges below that every tier relation is exercised.
		coord := func(b byte) float64 { return (float64(b) - 128) / 4 }
		d := &geom.Deployment{
			Readers: []geom.Point{{}},
			Radius:  64,
		}
		for i := 0; i+1 < len(raw); i += 2 {
			d.Tags = append(d.Tags, geom.Point{X: coord(raw[i]), Y: coord(raw[i+1])})
		}
		rg := topology.Ranges{
			ReaderToTag: 2 + float64(rangeBits%29),
			TagToTag:    0.5 + float64((rangeBits>>16)%12),
		}
		rg.TagToReader = rg.ReaderToTag * (0.2 + float64((rangeBits>>8)%64)/80)
		if rg.Validate() != nil {
			return
		}

		nw, err := topology.Build(d, 0, rg)
		if err != nil {
			t.Fatalf("build rejected a validated input: %v", err)
		}
		want := simtest.BruteTiers(d, 0, rg, nil)
		maxTier, reach := 0, 0
		for i, tier := range want {
			if nw.Tier[i] != tier {
				t.Fatalf("tag %d at %+v: tier %d, brute force says %d (ranges %+v)",
					i, d.Tags[i], nw.Tier[i], tier, rg)
			}
			if int(tier) > maxTier {
				maxTier = int(tier)
			}
			if tier > 0 {
				reach++
			}
		}
		if nw.K != maxTier || nw.Reachable != reach {
			t.Fatalf("summary K=%d Reachable=%d, brute force says %d/%d", nw.K, nw.Reachable, maxTier, reach)
		}
	})
}

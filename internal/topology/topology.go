// Package topology turns a deployment of state-free tags into the network
// structure the protocols run over: the tag↔tag neighbor graph, the per-tag
// tier (minimum hop distance to the reader, §III-C), and reachability.
//
// "State-free" means the tags themselves never hold this structure — it is
// purely a property of where they stand. The simulator computes it once per
// deployment so that it can deliver transmissions to the right listeners;
// the protocols under test never read it except through the air.
package topology

import (
	"fmt"
	"math"

	"netags/internal/geom"
)

// Ranges bundles the three communication ranges of the asymmetric link model
// (§III-A): the reader reaches every tag in one hop, tags reach the reader
// only from nearby, and tag↔tag links are shortest of all.
type Ranges struct {
	// ReaderToTag (R) is how far the reader's broadcast carries.
	ReaderToTag float64
	// TagToReader (r') is how close a tag must be for the reader to sense
	// its transmission.
	TagToReader float64
	// TagToTag (r) is the peer-to-peer range between tags.
	TagToTag float64
}

// PaperRanges returns the §VI-A setting: R = 30 m, r' = 20 m, with the given
// inter-tag range r.
func PaperRanges(r float64) Ranges {
	return Ranges{ReaderToTag: 30, TagToReader: 20, TagToTag: r}
}

// Validate reports whether the ranges are physically meaningful under the
// paper's model (R > r', R > r, all positive).
func (rg Ranges) Validate() error {
	if rg.ReaderToTag <= 0 || rg.TagToReader <= 0 || rg.TagToTag <= 0 {
		return fmt.Errorf("topology: ranges must be positive, got %+v", rg)
	}
	if rg.ReaderToTag < rg.TagToReader {
		return fmt.Errorf("topology: reader-to-tag range %v below tag-to-reader range %v",
			rg.ReaderToTag, rg.TagToReader)
	}
	return nil
}

// EstimatedTiers is the reader's a-priori tier estimate 1 + ⌈(R−r')/r⌉ used
// to size the checking frame (§III-E).
func (rg Ranges) EstimatedTiers() int {
	return 1 + int(math.Ceil((rg.ReaderToTag-rg.TagToReader)/rg.TagToTag))
}

// CheckingFrameLen is L_c = 2 × (1 + ⌈(R−r')/r⌉) from §III-E.
func (rg Ranges) CheckingFrameLen() int {
	return 2 * rg.EstimatedTiers()
}

// Network is the derived structure for one reader over one deployment.
// Adjacency is stored in compressed sparse row form: the neighbors of tag i
// are adj[offsets[i]:offsets[i+1]].
type Network struct {
	Deployment *geom.Deployment
	Ranges     Ranges
	// Reader is the position of the reader this network is rooted at.
	Reader geom.Point

	// Obstacles are wall segments that block the weak, tag-originated
	// links (tag↔tag and tag→reader). The reader's high-power broadcast
	// penetrates them (§III-A's asymmetric links), so the field of view is
	// unaffected.
	Obstacles []geom.Segment

	offsets []int32
	adj     []int32

	// Tier[i] is tag i's tier: 1 for direct reader contact, k for k-hop
	// paths, 0 for tags that cannot reach the reader at all.
	Tier []int16
	// K is the maximum tier among reachable tags (the K of §IV-C).
	K int
	// Reachable is the number of tags with Tier > 0.
	Reachable int
}

// Build computes the network for the reader at d.Readers[readerIdx].
func Build(d *geom.Deployment, readerIdx int, rg Ranges) (*Network, error) {
	return BuildObstructed(d, readerIdx, rg, nil)
}

// BuildObstructed is Build with wall segments that block tag-originated
// links — the paper's motivating scenario of obstacles carving holes into a
// reader's direct coverage, which multi-hop relaying then routes around.
func BuildObstructed(d *geom.Deployment, readerIdx int, rg Ranges, obstacles []geom.Segment) (*Network, error) {
	if err := rg.Validate(); err != nil {
		return nil, err
	}
	if readerIdx < 0 || readerIdx >= len(d.Readers) {
		return nil, fmt.Errorf("topology: reader index %d out of range [0,%d)", readerIdx, len(d.Readers))
	}
	nw := &Network{
		Deployment: d,
		Ranges:     rg,
		Reader:     d.Readers[readerIdx],
		Obstacles:  obstacles,
	}
	nw.buildAdjacency()
	nw.computeTiers()
	return nw, nil
}

// Neighbors returns the indices of tags within TagToTag range of tag i.
// The returned slice aliases internal storage and must not be modified.
func (nw *Network) Neighbors(i int) []int32 {
	return nw.adj[nw.offsets[i]:nw.offsets[i+1]]
}

// Degree returns the number of neighbors of tag i.
func (nw *Network) Degree(i int) int {
	return int(nw.offsets[i+1] - nw.offsets[i])
}

// N returns the number of tags (including unreachable ones).
func (nw *Network) N() int { return len(nw.Tier) }

// TierCounts returns a histogram of tags per tier; index 0 counts
// unreachable tags.
func (nw *Network) TierCounts() []int {
	counts := make([]int, nw.K+1)
	for _, t := range nw.Tier {
		counts[t]++
	}
	return counts
}

// buildAdjacency fills the CSR adjacency using a uniform grid with cell size
// equal to the tag-to-tag range, so each tag only tests the 3×3 surrounding
// cells. Links are symmetric by construction (same range both ways).
func (nw *Network) buildAdjacency() {
	tags := nw.Deployment.Tags
	n := len(tags)
	r := nw.Ranges.TagToTag
	r2 := r * r

	// Grid index: map each tag to a cell.
	minX, minY := math.Inf(1), math.Inf(1)
	maxX, maxY := math.Inf(-1), math.Inf(-1)
	for _, p := range tags {
		minX, minY = math.Min(minX, p.X), math.Min(minY, p.Y)
		maxX, maxY = math.Max(maxX, p.X), math.Max(maxY, p.Y)
	}
	if n == 0 {
		nw.offsets = make([]int32, 1)
		return
	}
	cols := int((maxX-minX)/r) + 1
	rows := int((maxY-minY)/r) + 1
	cell := func(p geom.Point) (int, int) {
		cx := int((p.X - minX) / r)
		cy := int((p.Y - minY) / r)
		// Guard the topmost boundary points.
		if cx >= cols {
			cx = cols - 1
		}
		if cy >= rows {
			cy = rows - 1
		}
		return cx, cy
	}

	// Bucket tags per cell (counting sort into a flat slice).
	cellOf := make([]int32, n)
	cellCount := make([]int32, cols*rows+1)
	for i, p := range tags {
		cx, cy := cell(p)
		c := int32(cy*cols + cx)
		cellOf[i] = c
		cellCount[c+1]++
	}
	for c := 1; c < len(cellCount); c++ {
		cellCount[c] += cellCount[c-1]
	}
	cellStart := cellCount // renamed view: cellStart[c] .. cellStart[c+1]
	members := make([]int32, n)
	fill := make([]int32, cols*rows)
	for i := range tags {
		c := cellOf[i]
		members[cellStart[c]+fill[c]] = int32(i)
		fill[c]++
	}

	// Pass 1: degree count; pass 2: fill.
	deg := make([]int32, n)
	forEachCandidate := func(i int, fn func(j int32)) {
		p := tags[i]
		cx, cy := cell(p)
		for dy := -1; dy <= 1; dy++ {
			for dx := -1; dx <= 1; dx++ {
				nx, ny := cx+dx, cy+dy
				if nx < 0 || nx >= cols || ny < 0 || ny >= rows {
					continue
				}
				c := int32(ny*cols + nx)
				for _, j := range members[cellStart[c]:cellStart[c+1]] {
					if int(j) == i {
						continue
					}
					if p.Dist2(tags[j]) <= r2 &&
						!geom.Blocked(nw.Obstacles, p, tags[j]) {
						fn(j)
					}
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		d := int32(0)
		forEachCandidate(i, func(int32) { d++ })
		deg[i] = d
	}
	nw.offsets = make([]int32, n+1)
	for i := 0; i < n; i++ {
		nw.offsets[i+1] = nw.offsets[i] + deg[i]
	}
	nw.adj = make([]int32, nw.offsets[n])
	cursor := make([]int32, n)
	for i := 0; i < n; i++ {
		forEachCandidate(i, func(j int32) {
			nw.adj[nw.offsets[i]+cursor[i]] = j
			cursor[i]++
		})
	}
}

// computeTiers runs a BFS from the tier-1 set (tags within TagToReader of
// the reader). A tag is in the system only if it is also inside the
// reader's broadcast range: CCM tags must hear the one-hop request and
// indicator-vector broadcasts (§III-A), so a tag beyond ReaderToTag cannot
// participate no matter how well it is relay-connected.
func (nw *Network) computeTiers() {
	tags := nw.Deployment.Tags
	n := len(tags)
	nw.Tier = make([]int16, n)
	queue := make([]int32, 0, n)
	r1 := nw.Ranges.TagToReader
	rb := nw.Ranges.ReaderToTag
	inFieldOfView := make([]bool, n)
	for i, p := range tags {
		d := p.Dist(nw.Reader)
		inFieldOfView[i] = d <= rb
		// Tier 1 needs the weak tag→reader link, which obstacles block;
		// the field of view (reader's high-power broadcast) is unaffected.
		if d <= r1 && inFieldOfView[i] && !geom.Blocked(nw.Obstacles, p, nw.Reader) {
			nw.Tier[i] = 1
			queue = append(queue, int32(i))
		}
	}
	nw.Reachable = len(queue)
	maxTier := int16(0)
	if len(queue) > 0 {
		maxTier = 1
	}
	for head := 0; head < len(queue); head++ {
		u := queue[head]
		next := nw.Tier[u] + 1
		for _, v := range nw.Neighbors(int(u)) {
			if nw.Tier[v] == 0 && inFieldOfView[v] {
				nw.Tier[v] = next
				if next > maxTier {
					maxTier = next
				}
				nw.Reachable++
				queue = append(queue, v)
			}
		}
	}
	nw.K = int(maxTier)
}

package topology

import (
	"math"
	"testing"

	"netags/internal/geom"
)

func line(points ...geom.Point) *geom.Deployment {
	return &geom.Deployment{
		Tags:    points,
		Readers: []geom.Point{{}},
		Radius:  30,
	}
}

func TestValidate(t *testing.T) {
	if err := PaperRanges(6).Validate(); err != nil {
		t.Fatalf("paper ranges invalid: %v", err)
	}
	bad := []Ranges{
		{ReaderToTag: 0, TagToReader: 20, TagToTag: 5},
		{ReaderToTag: 30, TagToReader: -1, TagToTag: 5},
		{ReaderToTag: 30, TagToReader: 20, TagToTag: 0},
		{ReaderToTag: 10, TagToReader: 20, TagToTag: 5},
	}
	for i, rg := range bad {
		if err := rg.Validate(); err == nil {
			t.Errorf("case %d: invalid ranges %+v passed validation", i, rg)
		}
	}
}

func TestEstimatedTiersAndCheckingFrame(t *testing.T) {
	// Paper values: R=30, r'=20 → 1+⌈10/r⌉.
	cases := map[float64]int{2: 6, 4: 4, 5: 3, 6: 3, 8: 3, 10: 2}
	for r, want := range cases {
		rg := PaperRanges(r)
		if got := rg.EstimatedTiers(); got != want {
			t.Errorf("EstimatedTiers(r=%v) = %d, want %d", r, got, want)
		}
		if got := rg.CheckingFrameLen(); got != 2*want {
			t.Errorf("CheckingFrameLen(r=%v) = %d, want %d", r, got, 2*want)
		}
	}
}

func TestBuildLineNetwork(t *testing.T) {
	// Tags at x = 19, 24, 29: tier 1 (within r'=20), then 5 m hops (r=6).
	d := line(geom.Point{X: 19}, geom.Point{X: 24}, geom.Point{X: 29})
	nw, err := Build(d, 0, PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	wantTier := []int16{1, 2, 3}
	for i, w := range wantTier {
		if nw.Tier[i] != w {
			t.Errorf("tier[%d] = %d, want %d", i, nw.Tier[i], w)
		}
	}
	if nw.K != 3 {
		t.Errorf("K = %d, want 3", nw.K)
	}
	if nw.Reachable != 3 {
		t.Errorf("Reachable = %d, want 3", nw.Reachable)
	}
	// Middle tag has two neighbors, ends have one.
	if nw.Degree(0) != 1 || nw.Degree(1) != 2 || nw.Degree(2) != 1 {
		t.Errorf("degrees = %d,%d,%d, want 1,2,1", nw.Degree(0), nw.Degree(1), nw.Degree(2))
	}
}

func TestBuildDisconnectedTag(t *testing.T) {
	// A tag at x=29 with no relay within reach is unreachable (tier 0) —
	// the paper excludes such tags from the system.
	d := line(geom.Point{X: 10}, geom.Point{X: 29})
	nw, err := Build(d, 0, PaperRanges(2))
	if err != nil {
		t.Fatal(err)
	}
	if nw.Tier[0] != 1 {
		t.Errorf("tier[0] = %d, want 1", nw.Tier[0])
	}
	if nw.Tier[1] != 0 {
		t.Errorf("tier[1] = %d, want 0 (unreachable)", nw.Tier[1])
	}
	if nw.Reachable != 1 {
		t.Errorf("Reachable = %d, want 1", nw.Reachable)
	}
}

func TestAdjacencySymmetric(t *testing.T) {
	d := geom.NewUniformDisk(2000, 30, 11)
	nw, err := Build(d, 0, PaperRanges(4))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.N(); i++ {
		for _, j := range nw.Neighbors(i) {
			found := false
			for _, back := range nw.Neighbors(int(j)) {
				if int(back) == i {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("link %d->%d not symmetric", i, j)
			}
		}
	}
}

func TestAdjacencyMatchesBruteForce(t *testing.T) {
	d := geom.NewUniformDisk(800, 30, 13)
	rg := PaperRanges(5)
	nw, err := Build(d, 0, rg)
	if err != nil {
		t.Fatal(err)
	}
	r2 := rg.TagToTag * rg.TagToTag
	for i := 0; i < nw.N(); i++ {
		want := map[int32]bool{}
		for j := range d.Tags {
			if j != i && d.Tags[i].Dist2(d.Tags[j]) <= r2 {
				want[int32(j)] = true
			}
		}
		got := nw.Neighbors(i)
		if len(got) != len(want) {
			t.Fatalf("tag %d: %d neighbors, brute force says %d", i, len(got), len(want))
		}
		for _, j := range got {
			if !want[j] {
				t.Fatalf("tag %d: spurious neighbor %d", i, j)
			}
		}
	}
}

func TestTiersMatchBFSInvariant(t *testing.T) {
	// Every tag at tier k >= 2 must have at least one neighbor at tier k-1,
	// and no neighbor at tier < k-1.
	d := geom.NewUniformDisk(3000, 30, 17)
	nw, err := Build(d, 0, PaperRanges(3))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nw.N(); i++ {
		k := nw.Tier[i]
		if k <= 1 {
			continue
		}
		best := int16(math.MaxInt16)
		for _, j := range nw.Neighbors(i) {
			if tj := nw.Tier[j]; tj > 0 && tj < best {
				best = tj
			}
		}
		if best != k-1 {
			t.Fatalf("tag %d at tier %d: closest reachable neighbor tier %d, want %d", i, k, best, k-1)
		}
	}
}

func TestTier1Definition(t *testing.T) {
	d := geom.NewUniformDisk(3000, 30, 19)
	rg := PaperRanges(6)
	nw, err := Build(d, 0, rg)
	if err != nil {
		t.Fatal(err)
	}
	for i, p := range d.Tags {
		within := p.Dist(nw.Reader) <= rg.TagToReader
		if within && nw.Tier[i] != 1 {
			t.Fatalf("tag %d within r' but tier %d", i, nw.Tier[i])
		}
		if !within && nw.Tier[i] == 1 {
			t.Fatalf("tag %d beyond r' but tier 1", i)
		}
	}
}

func TestTierCounts(t *testing.T) {
	d := geom.NewUniformDisk(5000, 30, 23)
	nw, err := Build(d, 0, PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	counts := nw.TierCounts()
	sum := 0
	for _, c := range counts {
		sum += c
	}
	if sum != nw.N() {
		t.Fatalf("tier counts sum to %d, want %d", sum, nw.N())
	}
	if counts[0] != nw.N()-nw.Reachable {
		t.Fatalf("unreachable count = %d, want %d", counts[0], nw.N()-nw.Reachable)
	}
	// At density ~1.77 (5000 tags) with r=6 the graph is connected with
	// overwhelming probability; nearly everything should be reachable.
	if nw.Reachable < nw.N()*99/100 {
		t.Fatalf("only %d/%d reachable; expected near-full connectivity", nw.Reachable, nw.N())
	}
}

// TestPaperTierCount reproduces the Fig. 3 shape at paper scale for one r:
// with n = 10,000 and r = 6 the network has about 1+⌈10/6⌉ = 3 tiers.
func TestPaperTierCount(t *testing.T) {
	if testing.Short() {
		t.Skip("paper-scale deployment")
	}
	d := geom.NewUniformDisk(10000, 30, 29)
	nw, err := Build(d, 0, PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	if nw.K < 3 || nw.K > 4 {
		t.Fatalf("K = %d for r=6, want 3 (up to 4 with routing detours)", nw.K)
	}
}

func TestBuildErrors(t *testing.T) {
	d := geom.NewUniformDisk(10, 30, 1)
	if _, err := Build(d, 5, PaperRanges(6)); err == nil {
		t.Error("bad reader index accepted")
	}
	if _, err := Build(d, 0, Ranges{}); err == nil {
		t.Error("zero ranges accepted")
	}
}

func TestEmptyDeployment(t *testing.T) {
	d := &geom.Deployment{Readers: []geom.Point{{}}, Radius: 30}
	nw, err := Build(d, 0, PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	if nw.N() != 0 || nw.K != 0 || nw.Reachable != 0 {
		t.Fatal("empty deployment produced non-empty network")
	}
}

func BenchmarkBuild10k(b *testing.B) {
	d := geom.NewUniformDisk(10000, 30, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(d, 0, PaperRanges(6)); err != nil {
			b.Fatal(err)
		}
	}
}

func TestObstructedLinks(t *testing.T) {
	// Two tags 4 m apart with a wall between them: no link. A third tag
	// below the wall routes around it.
	d := line(geom.Point{X: 16}, geom.Point{X: 20}, geom.Point{X: 18, Y: -6})
	wall := []geom.Segment{{A: geom.Point{X: 18, Y: -3}, B: geom.Point{X: 18, Y: 3}}}
	nw, err := BuildObstructed(d, 0, PaperRanges(8), wall)
	if err != nil {
		t.Fatal(err)
	}
	// Direct 0↔1 link is blocked…
	for _, j := range nw.Neighbors(0) {
		if j == 1 {
			t.Fatal("link through the wall survived")
		}
	}
	// …but both still have the detour tag as a neighbor.
	if nw.Degree(0) != 1 || nw.Degree(1) != 1 || nw.Degree(2) != 2 {
		t.Fatalf("degrees = %d,%d,%d, want 1,1,2", nw.Degree(0), nw.Degree(1), nw.Degree(2))
	}
}

func TestObstructedTagToReader(t *testing.T) {
	// A tag 10 m from the reader but behind a wall cannot be tier 1, yet
	// it can still hear the high-power broadcast and relay through a
	// neighbor with a clear return path.
	d := line(geom.Point{X: 10}, geom.Point{X: 10, Y: 8})
	wall := []geom.Segment{{A: geom.Point{X: 5, Y: -3}, B: geom.Point{X: 5, Y: 3}}}
	nw, err := BuildObstructed(d, 0, PaperRanges(8), wall)
	if err != nil {
		t.Fatal(err)
	}
	if nw.Tier[0] != 2 {
		t.Fatalf("blocked tag tier = %d, want 2 (relayed)", nw.Tier[0])
	}
	if nw.Tier[1] != 1 {
		t.Fatalf("clear tag tier = %d, want 1", nw.Tier[1])
	}
}

// TestObstructedCCMStillCollects is the paper's motivating claim end to
// end: a wall sector cuts many tags off from direct reader contact, yet a
// CCM session still collects every tag's bit by relaying around it.
func TestObstructedCCMStillCollects(t *testing.T) {
	d := geom.NewUniformDisk(2000, 30, 31)
	wall := []geom.Segment{{A: geom.Point{X: 4, Y: -12}, B: geom.Point{X: 4, Y: 12}}}
	clear, err := Build(d, 0, PaperRanges(6))
	if err != nil {
		t.Fatal(err)
	}
	blocked, err := BuildObstructed(d, 0, PaperRanges(6), wall)
	if err != nil {
		t.Fatal(err)
	}
	// The wall must actually cost direct coverage…
	tier1 := func(nw *Network) int {
		c := 0
		for i := 0; i < nw.N(); i++ {
			if nw.Tier[i] == 1 {
				c++
			}
		}
		return c
	}
	if tier1(blocked) >= tier1(clear) {
		t.Fatal("wall did not reduce direct coverage")
	}
	// …while multi-hop relaying keeps (almost) everyone in the system.
	if blocked.Reachable < clear.Reachable*99/100 {
		t.Fatalf("only %d/%d tags reachable around the wall", blocked.Reachable, clear.Reachable)
	}
}

package trp

import (
	"fmt"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// Identification goes beyond detection: instead of answering "is anything
// missing?", it classifies every inventory ID as present or absent with
// certainty. The paper's related work (§VII, Sheng et al. [9]) notes that
// single-shot probabilistic protocols cannot guarantee this; the standard
// remedy — implemented here — is iteration with fresh hash seeds:
//
//   - an idle predicted-busy slot proves every ID hashed into it absent;
//   - a busy slot whose mapped IDs are all known-absent except one proves
//     that one present (assuming a closed system: no unknown tags answer).
//
// Each round re-hashes with a new seed, so IDs that shared a slot (and thus
// masked each other) almost surely separate within a few rounds.

// IdentifyOptions configures Identify.
type IdentifyOptions struct {
	// FrameSize is the per-round frame size; 0 derives a frame comparable
	// to the inventory size (load factor ~1).
	FrameSize int
	// MaxRounds bounds the number of TRP executions (default 16).
	MaxRounds int
	// Seed derives the per-round request seeds.
	Seed uint64
	// Tracer, if non-nil, receives the underlying CCM sessions' events plus
	// one trp phase event per round (Phase "identify", Count = IDs still
	// undetermined after the round).
	Tracer obs.Tracer
}

// IdentifyResult reports an identification run.
type IdentifyResult struct {
	// Present and Absent partition the classified inventory IDs.
	Present []uint64
	Absent  []uint64
	// Undetermined lists IDs still unresolved when MaxRounds ran out
	// (empty when Complete).
	Undetermined []uint64
	// Complete reports full classification.
	Complete bool
	// Rounds is the number of TRP executions used.
	Rounds int
	// Clock and Meter accumulate costs over all rounds.
	Clock energy.Clock
	Meter *energy.Meter
}

// Identify classifies every inventory ID as present or absent by iterating
// TRP executions with fresh seeds over CCM. presentIDs[i] is the true ID of
// deployment tag i (the ground truth being simulated). The system is
// assumed closed: every responding tag is in the inventory.
func Identify(nw *topology.Network, inventory, presentIDs []uint64, opts IdentifyOptions) (*IdentifyResult, error) {
	if len(presentIDs) != nw.N() {
		return nil, fmt.Errorf("trp: %d present IDs for %d tags", len(presentIDs), nw.N())
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = 16
	}
	if opts.MaxRounds < 0 {
		return nil, fmt.Errorf("trp: negative round bound")
	}
	f := opts.FrameSize
	if f == 0 {
		f = len(inventory)
		if f < 16 {
			f = 16
		}
	}
	if f <= 0 {
		return nil, fmt.Errorf("trp: frame size %d must be positive", f)
	}

	const (
		unknown = iota
		present
		absent
	)
	state := make(map[uint64]int, len(inventory))
	for _, id := range inventory {
		state[id] = unknown
	}
	undetermined := len(inventory)

	out := &IdentifyResult{Meter: energy.NewMeter(nw.N())}
	seeds := prng.New(opts.Seed)
	for round := 0; round < opts.MaxRounds && undetermined > 0; round++ {
		seed := seeds.Uint64()
		res, err := core.RunSession(nw, core.Config{
			FrameSize: f,
			Seed:      seed,
			Sampling:  1,
			IDs:       presentIDs,
			Tracer:    opts.Tracer,
		})
		if err != nil {
			return nil, err
		}
		out.Rounds++
		out.Clock.Add(res.Clock)
		if err := out.Meter.Merge(res.Meter); err != nil {
			return nil, fmt.Errorf("trp: identify round %d: %w", out.Rounds, err)
		}

		// Group the inventory by slot for this seed.
		slotIDs := make(map[int][]uint64, len(inventory))
		for _, id := range inventory {
			s := prng.SlotOf(id, seed, f)
			slotIDs[s] = append(slotIDs[s], id)
		}
		for slot, ids := range slotIDs {
			if !res.Bitmap.Get(slot) {
				// Idle slot: everyone mapped here is absent.
				for _, id := range ids {
					if state[id] != absent {
						if state[id] == present {
							return nil, fmt.Errorf("trp: id %d proven both present and absent", id)
						}
						state[id] = absent
						undetermined--
					}
				}
				continue
			}
			// Busy slot: if exactly one mapped ID could be alive, it is.
			candidate := uint64(0)
			alive := 0
			for _, id := range ids {
				if state[id] != absent {
					alive++
					candidate = id
				}
			}
			if alive == 1 && state[candidate] == unknown {
				state[candidate] = present
				undetermined--
			}
		}
		if t := opts.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:      obs.KindPhase,
				Protocol:  obs.ProtoTRP,
				Phase:     "identify",
				Round:     out.Rounds,
				FrameSize: f,
				Count:     undetermined,
				Seed:      seed,
			})
		}
	}

	for _, id := range inventory {
		switch state[id] {
		case present:
			out.Present = append(out.Present, id)
		case absent:
			out.Absent = append(out.Absent, id)
		default:
			out.Undetermined = append(out.Undetermined, id)
		}
	}
	out.Complete = len(out.Undetermined) == 0
	return out, nil
}

package trp

import (
	"testing"

	"netags/internal/geom"
	"netags/internal/topology"
)

// identifySetup builds a depleted network plus ground truth: returns the
// inventory, the depleted network's present IDs, and the set of IDs that
// are genuinely in the system afterwards.
func identifySetup(t *testing.T, n, remove int, seed uint64) (inv, present []uint64, truth map[uint64]bool, nw *topology.Network) {
	t.Helper()
	full := geom.NewUniformDisk(n, 30, seed)
	fullNw := diskNetwork(t, full, 6)
	allIDs := ids(n)
	for i := 0; i < n; i++ {
		if fullNw.Tier[i] > 0 {
			inv = append(inv, allIDs[i])
		}
	}
	var removeIdx []int
	removed := make(map[uint64]bool, remove)
	for i := 0; i < n && len(removeIdx) < remove; i++ {
		if fullNw.Tier[i] > 0 {
			removeIdx = append(removeIdx, i)
			removed[allIDs[i]] = true
		}
	}
	depleted, orig := full.Remove(removeIdx)
	depNw := diskNetwork(t, depleted, 6)
	present = make([]uint64, depleted.N())
	for newIdx, oldIdx := range orig {
		present[newIdx] = allIDs[oldIdx]
	}
	truth = make(map[uint64]bool, len(inv))
	for i, id := range present {
		if depNw.Tier[i] > 0 {
			truth[id] = true
		}
	}
	return inv, present, truth, depNw
}

func TestIdentifyClassifiesExactly(t *testing.T) {
	inv, present, truth, nw := identifySetup(t, 1000, 30, 501)
	res, err := Identify(nw, inv, present, IdentifyOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("identification incomplete: %d undetermined after %d rounds",
			len(res.Undetermined), res.Rounds)
	}
	for _, id := range res.Present {
		if !truth[id] {
			t.Fatalf("id %d classified present but is absent", id)
		}
	}
	for _, id := range res.Absent {
		if truth[id] {
			t.Fatalf("id %d classified absent but is present", id)
		}
	}
	if len(res.Present)+len(res.Absent) != len(inv) {
		t.Fatalf("classified %d+%d of %d", len(res.Present), len(res.Absent), len(inv))
	}
	if res.Clock.Total() == 0 {
		t.Fatal("costs not tracked")
	}
}

func TestIdentifyNothingMissing(t *testing.T) {
	inv, present, _, nw := identifySetup(t, 600, 0, 503)
	res, err := Identify(nw, inv, present, IdentifyOptions{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete with nothing missing (%d undetermined)", len(res.Undetermined))
	}
	if len(res.Absent) != 0 {
		t.Fatalf("%d absences invented", len(res.Absent))
	}
	if len(res.Present) != len(inv) {
		t.Fatalf("present %d of %d", len(res.Present), len(inv))
	}
}

func TestIdentifyRoundBound(t *testing.T) {
	inv, present, _, nw := identifySetup(t, 800, 20, 507)
	res, err := Identify(nw, inv, present, IdentifyOptions{Seed: 7, MaxRounds: 1, FrameSize: 32})
	if err != nil {
		t.Fatal(err)
	}
	// A single tiny frame cannot separate 800 IDs; the bound must hold and
	// the leftover must be reported.
	if res.Rounds != 1 {
		t.Fatalf("rounds = %d, want 1", res.Rounds)
	}
	if res.Complete || len(res.Undetermined) == 0 {
		t.Fatal("implausibly complete with one 32-slot frame")
	}
}

func TestIdentifyValidation(t *testing.T) {
	_, present, _, nw := identifySetup(t, 100, 0, 509)
	if _, err := Identify(nw, nil, present[:1], IdentifyOptions{}); err == nil {
		t.Error("present-ID mismatch accepted")
	}
	if _, err := Identify(nw, nil, present, IdentifyOptions{MaxRounds: -1}); err == nil {
		t.Error("negative round bound accepted")
	}
}

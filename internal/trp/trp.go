// Package trp implements missing-tag detection (§V): the Trusted Reader
// Protocol of Tan et al. [8] layered on CCM sessions.
//
// The reader knows the full inventory of tag IDs. For a request (f, η) it
// can predict exactly which frame slots must be busy — every tag hashes its
// ID with η into one slot deterministically (p = 1). If a predicted-busy
// slot comes back idle, every tag that hashed into it must be absent.
// Theorem 1 guarantees the CCM-collected bitmap equals the traditional
// one-hop bitmap, so the prediction logic carries over unchanged to
// networked tags.
package trp

import (
	"fmt"
	"math"

	"netags/internal/bitmap"
	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/topology"
)

// PaperFrameSize is the frame size the paper derives from [8] for n = 10,000,
// m = 50, δ = 95% (§VI-B).
const PaperFrameSize = 3228

// FrameSizeFor returns the smallest frame size such that a single execution
// detects the absence of more than m tags (out of an inventory of n) with
// probability at least delta — requirement (14).
//
// A missing tag is detected iff no present tag hashed into its slot, which
// happens with probability ≈ e^{-(n-m)/f}. With m independent missing tags,
// Prob{detect} ≈ 1 − (1 − e^{-(n-m)/f})^m ≥ delta solves to
// f ≥ (n−m) / −ln(1 − (1−delta)^{1/m}).
func FrameSizeFor(n, m int, delta float64) (int, error) {
	if n <= 0 || m <= 0 || m >= n {
		return 0, fmt.Errorf("trp: need 0 < m < n, got n=%d m=%d", n, m)
	}
	if delta <= 0 || delta >= 1 {
		return 0, fmt.Errorf("trp: delta %v outside (0,1)", delta)
	}
	// 1 − (1−δ)^{1/m}, computed stably.
	q := -math.Expm1(math.Log1p(-delta) / float64(m))
	f := int(math.Ceil(float64(n-m) / -math.Log(q)))
	// The e^{-(n−m)/f} approximation slightly overstates the probability a
	// slot stays empty; nudge f up until the exact Bernoulli form meets
	// delta (at most a handful of steps).
	for DetectionProbability(n, m, f) < delta {
		f++
	}
	return f, nil
}

// DetectionProbability returns the analytical single-execution detection
// probability when exactly missing tags are absent from an inventory of n,
// using frame size f.
func DetectionProbability(n, missing, f int) float64 {
	if missing <= 0 || f <= 0 {
		return 0
	}
	present := n - missing
	if present < 0 {
		present = 0
	}
	pEmpty := math.Pow(1-1/float64(f), float64(present))
	return 1 - math.Pow(1-pEmpty, float64(missing))
}

// Plan is the reader's precomputed view of one detection request: which
// slots each inventory ID occupies and which slots must therefore be busy.
type Plan struct {
	// FrameSize and Seed identify the request (f, η).
	FrameSize int
	Seed      uint64
	// Expected is the predicted status bitmap: bit i set iff some inventory
	// tag hashes to slot i.
	Expected *bitmap.Bitmap

	// slotIDs maps each slot to the inventory IDs that hash into it, for
	// identifying suspects after detection.
	slotIDs map[int][]uint64
}

// NewPlan builds the reader-side prediction for the inventory ids under
// request (frameSize, seed).
func NewPlan(ids []uint64, frameSize int, seed uint64) (*Plan, error) {
	if frameSize <= 0 {
		return nil, fmt.Errorf("trp: frame size %d must be positive", frameSize)
	}
	p := &Plan{
		FrameSize: frameSize,
		Seed:      seed,
		Expected:  bitmap.New(frameSize),
		slotIDs:   make(map[int][]uint64, len(ids)),
	}
	for _, id := range ids {
		s := prng.SlotOf(id, seed, frameSize)
		p.Expected.Set(s)
		p.slotIDs[s] = append(p.slotIDs[s], id)
	}
	return p, nil
}

// Detection is the outcome of comparing a collected bitmap to a plan.
type Detection struct {
	// Missing reports whether at least one missing tag was detected.
	Missing bool
	// EmptySlots lists the predicted-busy slots that came back idle.
	EmptySlots []int
	// Suspects lists the inventory IDs that hashed into an empty slot —
	// every one of them is provably absent (under a reliable channel).
	Suspects []uint64
	// UnexpectedBusy lists slots that were busy without any inventory tag
	// hashing into them: evidence of unknown tags (or channel noise).
	UnexpectedBusy []int
}

func errLengthMismatch(got, want int) error {
	return fmt.Errorf("trp: bitmap length %d does not match frame size %d", got, want)
}

// Detect compares the actual bitmap collected from the field against the
// plan's prediction.
func (p *Plan) Detect(actual *bitmap.Bitmap) (Detection, error) {
	var d Detection
	if actual.Len() != p.FrameSize {
		return d, errLengthMismatch(actual.Len(), p.FrameSize)
	}
	p.Expected.ForEach(func(slot int) {
		if !actual.Get(slot) {
			d.EmptySlots = append(d.EmptySlots, slot)
			d.Suspects = append(d.Suspects, p.slotIDs[slot]...)
		}
	})
	actual.ForEach(func(slot int) {
		if !p.Expected.Get(slot) {
			d.UnexpectedBusy = append(d.UnexpectedBusy, slot)
		}
	})
	d.Missing = len(d.EmptySlots) > 0
	return d, nil
}

// Outcome reports one full detection execution over a networked tag system.
type Outcome struct {
	Detection
	// Rounds, Clock and Meter carry the CCM session costs.
	Rounds int
	Clock  energy.Clock
	Meter  *energy.Meter
}

// Options configures Run.
type Options struct {
	// FrameSize is f; 0 derives it from the inventory size, Tolerance and
	// Delta via FrameSizeFor.
	FrameSize int
	// Seed is the request seed η.
	Seed uint64
	// Tolerance is the m of requirement (14); default max(1, 0.5% of the
	// inventory), the paper's evaluation setting.
	Tolerance int
	// Delta is the required detection probability (default 0.95).
	Delta float64
	// LossProb forwards the unreliable-channel extension.
	LossProb float64
	// LossSeed seeds the loss process.
	LossSeed uint64
	// CheckingFrameLen overrides the session's L_c bound (see core.Config).
	CheckingFrameLen int
	// Tracer, if non-nil, receives the underlying CCM session's events plus
	// one trp phase event per detection (Phase "detect", Count = empty
	// predicted-busy slots found).
	Tracer obs.Tracer
}

// Run executes one TRP detection over the network: the reader plans with the
// full inventory, CCM collects the actual bitmap from whatever tags are
// physically present (p = 1), and the plan is checked against it.
//
// inventory holds the IDs the reader believes should be present; presentIDs
// holds the ID of each tag actually deployed in nw (presentIDs[i] belongs to
// deployment tag i). presentIDs need not be a subset of inventory — IDs
// outside it show up as UnexpectedBusy slots.
func Run(nw *topology.Network, inventory, presentIDs []uint64, opts Options) (*Outcome, error) {
	if len(presentIDs) != nw.N() {
		return nil, fmt.Errorf("trp: %d present IDs for %d tags", len(presentIDs), nw.N())
	}
	if opts.Delta == 0 {
		opts.Delta = 0.95
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = len(inventory) / 200
		if opts.Tolerance == 0 {
			opts.Tolerance = 1
		}
	}
	f := opts.FrameSize
	if f == 0 {
		var err error
		f, err = FrameSizeFor(len(inventory), opts.Tolerance, opts.Delta)
		if err != nil {
			return nil, err
		}
	}
	plan, err := NewPlan(inventory, f, opts.Seed)
	if err != nil {
		return nil, err
	}
	res, err := core.RunSession(nw, core.Config{
		FrameSize:        f,
		Seed:             opts.Seed,
		Sampling:         1,
		IDs:              presentIDs,
		LossProb:         opts.LossProb,
		LossSeed:         opts.LossSeed,
		CheckingFrameLen: opts.CheckingFrameLen,
		Tracer:           opts.Tracer,
	})
	if err != nil {
		return nil, err
	}
	det, err := plan.Detect(res.Bitmap)
	if err != nil {
		return nil, err
	}
	if t := opts.Tracer; t != nil {
		t.Trace(obs.Event{
			Kind:      obs.KindPhase,
			Protocol:  obs.ProtoTRP,
			Phase:     "detect",
			FrameSize: f,
			Count:     len(det.EmptySlots),
			Pending:   det.Missing,
			Seed:      opts.Seed,
		})
	}
	return &Outcome{
		Detection: det,
		Rounds:    res.Rounds,
		Clock:     res.Clock,
		Meter:     res.Meter,
	}, nil
}

// RunRepeated executes up to maxExecutions TRP detections with distinct
// seeds, stopping at the first that reports a missing tag — the paper's
// "multiple executions of TRP will further increase the detection
// probability" (§V-A). Costs accumulate over every execution performed.
// The combined miss probability after k clean executions is (1−P_d)^k.
func RunRepeated(nw *topology.Network, inventory, presentIDs []uint64, opts Options, maxExecutions int) (*Outcome, int, error) {
	if maxExecutions <= 0 {
		return nil, 0, fmt.Errorf("trp: execution count %d must be positive", maxExecutions)
	}
	var total Outcome
	total.Meter = energy.NewMeter(nw.N())
	seeds := prng.New(opts.Seed)
	for exec := 1; exec <= maxExecutions; exec++ {
		opts.Seed = seeds.Uint64()
		opts.LossSeed = seeds.Uint64()
		out, err := Run(nw, inventory, presentIDs, opts)
		if err != nil {
			return nil, exec, err
		}
		total.Rounds += out.Rounds
		total.Clock.Add(out.Clock)
		if err := total.Meter.Merge(out.Meter); err != nil {
			return nil, exec, fmt.Errorf("trp: execution %d: %w", exec, err)
		}
		if out.Missing {
			total.Detection = out.Detection
			return &total, exec, nil
		}
	}
	return &total, maxExecutions, nil
}

// PaperSession runs the single §VI-B evaluation session: frame size 3228
// with p = 1, exactly as the paper measures TRP-CCM's time and energy.
func PaperSession(nw *topology.Network, seed uint64) (*core.Result, error) {
	return core.RunSession(nw, core.Config{
		FrameSize: PaperFrameSize,
		Seed:      seed,
		Sampling:  1,
	})
}

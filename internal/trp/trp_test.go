package trp

import (
	"math"
	"testing"

	"netags/internal/bitmap"
	"netags/internal/core"
	"netags/internal/geom"
	"netags/internal/prng"
	"netags/internal/topology"
)

func diskNetwork(t *testing.T, d *geom.Deployment, r float64) *topology.Network {
	t.Helper()
	nw, err := topology.Build(d, 0, topology.PaperRanges(r))
	if err != nil {
		t.Fatal(err)
	}
	return nw
}

func ids(n int) []uint64 {
	out := make([]uint64, n)
	for i := range out {
		out[i] = uint64(i) + 1000
	}
	return out
}

func TestFrameSizeFor(t *testing.T) {
	f, err := FrameSizeFor(10000, 50, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	// Our independence-approximation derivation gives ~3497; the paper's
	// value from [8] is 3228. Assert the ballpark and that the resulting
	// detection probability actually meets delta.
	if f < 2800 || f > 4000 {
		t.Fatalf("FrameSizeFor(10000, 50, 0.95) = %d, want ~3200-3500", f)
	}
	if p := DetectionProbability(10000, 50, f); p < 0.95 {
		t.Fatalf("derived frame size yields detection probability %v < 0.95", p)
	}
	// Monotonicity: stricter delta or smaller tolerance needs more slots.
	f2, err := FrameSizeFor(10000, 50, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if f2 <= f {
		t.Fatalf("delta 0.99 needs %d slots <= delta 0.95's %d", f2, f)
	}
	f3, err := FrameSizeFor(10000, 10, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if f3 <= f {
		t.Fatalf("tolerance 10 needs %d slots <= tolerance 50's %d", f3, f)
	}
}

func TestFrameSizeForErrors(t *testing.T) {
	cases := []struct {
		n, m  int
		delta float64
	}{
		{0, 1, 0.9}, {10, 0, 0.9}, {10, 10, 0.9}, {10, 5, 0}, {10, 5, 1},
	}
	for i, c := range cases {
		if _, err := FrameSizeFor(c.n, c.m, c.delta); err == nil {
			t.Errorf("case %d accepted: %+v", i, c)
		}
	}
}

func TestDetectionProbabilityShape(t *testing.T) {
	// More missing tags → easier to detect; bigger frame → easier too.
	if DetectionProbability(10000, 100, 3228) <= DetectionProbability(10000, 10, 3228) {
		t.Error("detection probability not increasing in missing count")
	}
	if DetectionProbability(10000, 50, 6000) <= DetectionProbability(10000, 50, 2000) {
		t.Error("detection probability not increasing in frame size")
	}
	if got := DetectionProbability(10, 0, 100); got != 0 {
		t.Errorf("zero missing should give probability 0, got %v", got)
	}
}

func TestPlanPrediction(t *testing.T) {
	inv := ids(500)
	plan, err := NewPlan(inv, 1024, 7)
	if err != nil {
		t.Fatal(err)
	}
	// Every inventory ID's slot must be predicted busy.
	for _, id := range inv {
		if !plan.Expected.Get(prng.SlotOf(id, 7, 1024)) {
			t.Fatalf("slot of id %d not predicted busy", id)
		}
	}
	if plan.Expected.Count() > len(inv) {
		t.Fatal("more predicted-busy slots than tags")
	}
}

func TestNewPlanError(t *testing.T) {
	if _, err := NewPlan(ids(5), 0, 1); err == nil {
		t.Fatal("zero frame size accepted")
	}
}

func TestDetectAgainstSyntheticBitmaps(t *testing.T) {
	inv := ids(100)
	const f = 512
	plan, err := NewPlan(inv, f, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Perfect bitmap: no detection.
	det, err := plan.Detect(plan.Expected.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if det.Missing || len(det.Suspects) != 0 || len(det.UnexpectedBusy) != 0 {
		t.Fatalf("perfect bitmap triggered detection: %+v", det)
	}
	// Remove one tag's slot (choose an ID alone in its slot).
	var lonely uint64
	for _, id := range inv {
		slot := prng.SlotOf(id, 3, f)
		if len(plan.slotIDs[slot]) == 1 {
			lonely = id
			break
		}
	}
	if lonely == 0 {
		t.Skip("no singleton slot in this configuration")
	}
	actual := plan.Expected.Clone()
	actual.Clear(prng.SlotOf(lonely, 3, f))
	det, err = plan.Detect(actual)
	if err != nil {
		t.Fatal(err)
	}
	if !det.Missing {
		t.Fatal("cleared slot not detected")
	}
	if len(det.Suspects) != 1 || det.Suspects[0] != lonely {
		t.Fatalf("suspects = %v, want [%d]", det.Suspects, lonely)
	}
	// Extra busy slot → unexpected-busy evidence.
	empty := -1
	for i := 0; i < f; i++ {
		if !plan.Expected.Get(i) {
			empty = i
			break
		}
	}
	actual = plan.Expected.Clone()
	actual.Set(empty)
	det, err = plan.Detect(actual)
	if err != nil {
		t.Fatal(err)
	}
	if det.Missing {
		t.Fatal("extra busy slot flagged as missing")
	}
	if len(det.UnexpectedBusy) != 1 || det.UnexpectedBusy[0] != empty {
		t.Fatalf("unexpected busy = %v, want [%d]", det.UnexpectedBusy, empty)
	}
}

func TestDetectLengthMismatch(t *testing.T) {
	plan, err := NewPlan(ids(10), 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := plan.Detect(bitmap.New(65)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestRunNoFalsePositives(t *testing.T) {
	// Nothing missing, reliable channel: detection must never fire, for any
	// seed (Theorem 1 makes the collected bitmap exact).
	d := geom.NewUniformDisk(1500, 30, 91)
	nw := diskNetwork(t, d, 6)
	inv := make([]uint64, 0, nw.Reachable)
	present := ids(d.N())
	for i := 0; i < d.N(); i++ {
		if nw.Tier[i] > 0 {
			inv = append(inv, present[i])
		}
	}
	for seed := uint64(0); seed < 5; seed++ {
		out, err := Run(nw, inv, present, Options{Seed: seed, Tolerance: 8})
		if err != nil {
			t.Fatal(err)
		}
		if out.Missing {
			t.Fatalf("seed %d: false positive with %d empty slots", seed, len(out.EmptySlots))
		}
	}
}

func TestRunDetectsRemovedTags(t *testing.T) {
	// Remove tags beyond the tolerance and check detection fires at the
	// advertised rate across seeds.
	full := geom.NewUniformDisk(1500, 30, 97)
	fullNw := diskNetwork(t, full, 6)
	present := ids(full.N())
	inv := make([]uint64, 0, fullNw.Reachable)
	reachable := make([]int, 0, fullNw.Reachable)
	for i := 0; i < full.N(); i++ {
		if fullNw.Tier[i] > 0 {
			inv = append(inv, present[i])
			reachable = append(reachable, i)
		}
	}
	// Remove 3% of reachable tags (well past a 0.5% tolerance).
	remove := reachable[:len(reachable)*3/100]
	depleted, orig := full.Remove(remove)
	depletedNw := diskNetwork(t, depleted, 6)
	depletedIDs := make([]uint64, depleted.N())
	for newIdx, oldIdx := range orig {
		depletedIDs[newIdx] = present[oldIdx]
	}

	detections := 0
	const trials = 10
	for seed := uint64(0); seed < trials; seed++ {
		out, err := Run(depletedNw, inv, depletedIDs, Options{
			Seed:      seed,
			Tolerance: len(inv) / 200,
			Delta:     0.95,
		})
		if err != nil {
			t.Fatal(err)
		}
		if out.Missing {
			detections++
			// Soundness: every suspect must really be absent from the
			// system. Tags that lost their relay path when others were
			// removed count as absent too (§II: unreachable tags are not
			// in the system).
			presentSet := make(map[uint64]bool, len(depletedIDs))
			for i, id := range depletedIDs {
				if depletedNw.Tier[i] > 0 {
					presentSet[id] = true
				}
			}
			for _, s := range out.Suspects {
				if presentSet[s] {
					t.Fatalf("seed %d: suspect %d is actually present", seed, s)
				}
			}
		}
	}
	if detections < trials-1 {
		t.Fatalf("detected in %d/%d trials; with 6x the tolerance missing it should be near-certain", detections, trials)
	}
}

func TestRunOptionDefaults(t *testing.T) {
	d := geom.NewUniformDisk(300, 30, 101)
	nw := diskNetwork(t, d, 8)
	present := ids(d.N())
	out, err := Run(nw, present, present, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if out.Clock.Total() == 0 || out.Rounds == 0 {
		t.Fatal("session costs not reported")
	}
}

func TestRunErrors(t *testing.T) {
	d := geom.NewUniformDisk(10, 30, 103)
	nw := diskNetwork(t, d, 8)
	if _, err := Run(nw, ids(10), ids(9), Options{}); err == nil {
		t.Fatal("present-ID length mismatch accepted")
	}
	if _, err := Run(nw, ids(10), ids(10), Options{Delta: 1.5}); err == nil {
		t.Fatal("invalid delta accepted")
	}
}

// TestDetectionRateMatchesAnalysis cross-checks the simulated detection rate
// against DetectionProbability on a deliberately undersized frame, where the
// rate is far from 1 and the comparison is informative.
func TestDetectionRateMatchesAnalysis(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-trial statistical test")
	}
	const n, missing, f = 800, 4, 700
	src := prng.New(107)
	inv := ids(n)
	detections := 0
	const trials = 200
	for trial := 0; trial < trials; trial++ {
		// Synthetic one-hop bitmap: cheaper than a full CCM run and, by
		// Theorem 1 (tested in core), equivalent.
		seed := src.Uint64()
		actual := bitmap.New(f)
		for _, id := range inv[missing:] { // first `missing` IDs absent
			actual.Set(prng.SlotOf(id, seed, f))
		}
		plan, err := NewPlan(inv, f, seed)
		if err != nil {
			t.Fatal(err)
		}
		det, err := plan.Detect(actual)
		if err != nil {
			t.Fatal(err)
		}
		if det.Missing {
			detections++
		}
	}
	want := DetectionProbability(n, missing, f)
	got := float64(detections) / trials
	if math.Abs(got-want) > 0.12 {
		t.Fatalf("detection rate %v, analysis predicts %v", got, want)
	}
}

func TestRunRepeatedStopsAtDetection(t *testing.T) {
	full := geom.NewUniformDisk(1000, 30, 131)
	fullNw := diskNetwork(t, full, 6)
	present := ids(full.N())
	var inv []uint64
	var reachable []int
	for i := 0; i < full.N(); i++ {
		if fullNw.Tier[i] > 0 {
			inv = append(inv, present[i])
			reachable = append(reachable, i)
		}
	}
	depleted, orig := full.Remove(reachable[:30])
	depNw := diskNetwork(t, depleted, 6)
	depIDs := make([]uint64, depleted.N())
	for newIdx, oldIdx := range orig {
		depIDs[newIdx] = present[oldIdx]
	}
	out, execs, err := RunRepeated(depNw, inv, depIDs, Options{Seed: 3, Tolerance: 5}, 8)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Missing {
		t.Fatalf("30 missing tags undetected in %d executions", execs)
	}
	if execs < 1 || execs > 8 {
		t.Fatalf("execs = %d", execs)
	}
	if out.Clock.Total() == 0 {
		t.Fatal("costs not accumulated")
	}
}

func TestRunRepeatedNothingMissing(t *testing.T) {
	d := geom.NewUniformDisk(500, 30, 137)
	nw := diskNetwork(t, d, 6)
	present := ids(d.N())
	var inv []uint64
	for i := 0; i < d.N(); i++ {
		if nw.Tier[i] > 0 {
			inv = append(inv, present[i])
		}
	}
	out, execs, err := RunRepeated(nw, inv, present, Options{Seed: 5, Tolerance: 3}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.Missing {
		t.Fatal("false positive across repeated executions")
	}
	if execs != 4 {
		t.Fatalf("execs = %d, want all 4 (nothing to find)", execs)
	}
	if _, _, err := RunRepeated(nw, inv, present, Options{}, 0); err == nil {
		t.Fatal("zero executions accepted")
	}
}

func TestUnknownDetectionProbability(t *testing.T) {
	if got := UnknownDetectionProbability(1000, 0, 512); got != 0 {
		t.Errorf("zero unknowns should give 0, got %v", got)
	}
	// More unknowns and bigger frames both raise the detection rate.
	if UnknownDetectionProbability(1000, 10, 2048) <= UnknownDetectionProbability(1000, 1, 2048) {
		t.Error("rate not increasing in unknown count")
	}
	if UnknownDetectionProbability(1000, 5, 8192) <= UnknownDetectionProbability(1000, 5, 1024) {
		t.Error("rate not increasing in frame size")
	}
}

func TestDetectUnknownSynthetic(t *testing.T) {
	inv := ids(200)
	const f = 1024
	plan, err := NewPlan(inv, f, 5)
	if err != nil {
		t.Fatal(err)
	}
	// Expected bitmap alone: nothing unknown.
	d, err := plan.DetectUnknown(plan.Expected.Clone())
	if err != nil {
		t.Fatal(err)
	}
	if d.Present {
		t.Fatal("clean bitmap reported unknown tags")
	}
	// Set one unpredicted slot: proof of a foreign tag.
	actual := plan.Expected.Clone()
	extra := -1
	for i := 0; i < f; i++ {
		if !plan.Expected.Get(i) {
			extra = i
			break
		}
	}
	actual.Set(extra)
	d, err = plan.DetectUnknown(actual)
	if err != nil {
		t.Fatal(err)
	}
	if !d.Present || len(d.Slots) != 1 || d.Slots[0] != extra {
		t.Fatalf("unknown detection = %+v, want slot %d", d, extra)
	}
	if _, err := plan.DetectUnknown(bitmap.New(f + 1)); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

// TestDetectUnknownEndToEnd plants foreign tags in the field and checks the
// reader proves their presence through CCM.
func TestDetectUnknownEndToEnd(t *testing.T) {
	d := geom.NewUniformDisk(1200, 30, 151)
	nw := diskNetwork(t, d, 6)
	present := ids(1200)
	// Inventory = all reachable tags except 40 "foreign" ones the reader
	// has never seen.
	var inv []uint64
	foreign := 0
	for i := 0; i < d.N(); i++ {
		if nw.Tier[i] == 0 {
			continue
		}
		if foreign < 40 {
			foreign++
			continue // present but not in the inventory
		}
		inv = append(inv, present[i])
	}
	detections := 0
	const trials = 8
	for seed := uint64(0); seed < trials; seed++ {
		f, err := FrameSizeFor(len(inv), len(inv)/200+1, 0.95)
		if err != nil {
			t.Fatal(err)
		}
		plan, err := NewPlan(inv, f, seed)
		if err != nil {
			t.Fatal(err)
		}
		res, err := core.RunSession(nw, core.Config{
			FrameSize: f, Seed: seed, Sampling: 1, IDs: present,
		})
		if err != nil {
			t.Fatal(err)
		}
		det, err := plan.DetectUnknown(res.Bitmap)
		if err != nil {
			t.Fatal(err)
		}
		if det.Present {
			detections++
		}
	}
	// 40 unknowns in a ~1300-slot frame: analytic detection rate is near 1.
	if want := UnknownDetectionProbability(len(inv), 40, 1300); want > 0.99 && detections < trials-1 {
		t.Fatalf("detected foreign tags in %d/%d trials, analytic rate %v", detections, trials, want)
	}
}

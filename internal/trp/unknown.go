package trp

import (
	"math"

	"netags/internal/bitmap"
)

// Unknown-tag detection is the dual of missing-tag detection and the other
// half of the inventory-integrity story the paper's related work surveys
// (§VII, refs. [12], [13]): instead of asking "is an inventory tag absent?"
// (a predicted-busy slot coming back idle), it asks "is a non-inventory tag
// present?" — a slot coming back busy that no inventory tag maps to. Under
// CCM's exact bitmap delivery (Theorem 1), such a slot is proof positive.
//
// An unknown tag escapes detection only by landing in a slot some inventory
// tag also occupies, so the single-execution detection probability for u
// unknown tags is 1 − (1 − q)^u with q = (1−1/f)^n, the chance a given slot
// is free of the n inventory tags. Plan.DetectUnknown evaluates a collected
// bitmap; UnknownDetectionProbability gives the analytic rate.

// UnknownDetectionProbability returns the probability that at least one of
// `unknown` foreign tags shows up in a slot unoccupied by any of the n
// inventory tags, for frame size f.
func UnknownDetectionProbability(n, unknown, f int) float64 {
	if unknown <= 0 || f <= 0 {
		return 0
	}
	q := math.Pow(1-1/float64(f), float64(n))
	return 1 - math.Pow(1-q, float64(unknown))
}

// UnknownDetection is the outcome of checking a bitmap for foreign tags.
type UnknownDetection struct {
	// Present reports whether at least one unknown tag was proven present.
	Present bool
	// Slots lists the busy slots no inventory tag maps to.
	Slots []int
}

// DetectUnknown scans a collected bitmap for busy slots outside the plan's
// prediction — each one proves a tag the reader does not know about.
func (p *Plan) DetectUnknown(actual *bitmap.Bitmap) (UnknownDetection, error) {
	var d UnknownDetection
	if actual.Len() != p.FrameSize {
		return d, errLengthMismatch(actual.Len(), p.FrameSize)
	}
	actual.ForEach(func(slot int) {
		if !p.Expected.Get(slot) {
			d.Slots = append(d.Slots, slot)
		}
	})
	d.Present = len(d.Slots) > 0
	return d, nil
}

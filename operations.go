package netags

import (
	"fmt"
	"math"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/gmle"
	"netags/internal/lof"
	"netags/internal/obs"
	"netags/internal/prng"
	"netags/internal/search"
	"netags/internal/sicp"
	"netags/internal/trp"
)

// Cost reports what an operation spent, in the paper's units: air time in
// slot counts and per-tag energy in bits, aggregated over in-system tags.
type Cost struct {
	// Slots is the total execution time (Fig. 4's unit): ShortSlots carry
	// one tag bit, LongSlots carry a 96-bit message.
	Slots      int64
	ShortSlots int64
	LongSlots  int64
	// MaxBitsSent / MaxBitsReceived are the worst-case per-tag energies
	// (Tables I and II).
	MaxBitsSent     int64
	MaxBitsReceived int64
	// AvgBitsSent / AvgBitsReceived are the per-tag means (Tables III, IV).
	AvgBitsSent     float64
	AvgBitsReceived float64
}

func (s *System) cost(clock energy.Clock, meter *energy.Meter) Cost {
	sum := meter.Summarize(s.inSystem)
	return Cost{
		Slots:           clock.Total(),
		ShortSlots:      clock.ShortSlots,
		LongSlots:       clock.LongSlots,
		MaxBitsSent:     sum.MaxSent,
		MaxBitsReceived: sum.MaxReceived,
		AvgBitsSent:     sum.AvgSent,
		AvgBitsReceived: sum.AvgReceived,
	}
}

// EstimateMethod selects the cardinality estimator.
type EstimateMethod int

// The available estimators: GMLE (the paper's §IV choice) and the
// Lottery-Frame sketch of reference [2], which trades accuracy for very
// short frames.
const (
	EstimateGMLE EstimateMethod = iota
	EstimateLoF
)

// EstimateOptions configures EstimateCardinality.
type EstimateOptions struct {
	// Method selects the estimator (default GMLE).
	Method EstimateMethod
	// Alpha is the confidence level α (default 0.95). GMLE only.
	Alpha float64
	// Beta is the relative error bound β (default 0.05). GMLE only.
	Beta float64
	// FrameSize overrides the accurate-phase frame size (0 = derive from
	// Alpha and Beta for GMLE, 32 for LoF).
	FrameSize int
	// MaxFrames bounds the number of CCM sessions (default 64 for GMLE,
	// 32 for LoF).
	MaxFrames int
	// Seed makes the run reproducible.
	Seed uint64
	// LossProb enables the unreliable-channel extension.
	LossProb float64
}

// EstimateResult reports a cardinality estimation run.
type EstimateResult struct {
	// Estimate is n̂, the estimated number of in-system tags.
	Estimate float64
	// RelHalfWidth is the achieved relative confidence half-width.
	RelHalfWidth float64
	// Converged reports whether the (α, β) requirement was met.
	Converged bool
	// Frames is the number of CCM sessions executed.
	Frames int
	// Cost aggregates time and energy over all sessions.
	Cost Cost
	// Truncated warns that at least one session ended with data still in
	// flight (see SystemOptions.CheckingFrameLen); the estimate is then
	// biased low.
	Truncated bool
}

// EstimateCardinality estimates the number of tags in the system over CCM.
// The default GMLE method (paper §IV) satisfies
// Prob{n̂(1−β) ≤ n ≤ n̂(1+β)} ≥ α; the LoF method answers with far shorter
// frames at sketch-level accuracy.
func (s *System) EstimateCardinality(opts EstimateOptions) (*EstimateResult, error) {
	switch opts.Method {
	case EstimateGMLE:
		out, err := gmle.EstimateWith(s.TagCount(), s.runSession, gmle.Options{
			Alpha:     opts.Alpha,
			Beta:      opts.Beta,
			FrameSize: opts.FrameSize,
			MaxFrames: opts.MaxFrames,
			Seed:      opts.Seed,
			LossProb:  opts.LossProb,
			Tracer:    s.tracer,
		})
		if err != nil {
			return nil, err
		}
		return &EstimateResult{
			Estimate:     out.Estimate,
			RelHalfWidth: out.RelHalfWidth,
			Converged:    out.Converged,
			Frames:       out.Frames,
			Cost:         s.cost(out.Clock, out.Meter),
			Truncated:    out.Truncated,
		}, nil
	case EstimateLoF:
		out, err := lof.EstimateWith(s.TagCount(), s.runSession, lof.Options{
			Frames:    opts.MaxFrames,
			FrameSize: opts.FrameSize,
			Seed:      opts.Seed,
			LossProb:  opts.LossProb,
			Tracer:    s.tracer,
		})
		if err != nil {
			return nil, err
		}
		return &EstimateResult{
			Estimate:     out.Estimate,
			RelHalfWidth: math.Inf(1), // LoF gives no confidence interval
			Frames:       out.Frames,
			Cost:         s.cost(out.Clock, out.Meter),
			Truncated:    out.Truncated,
		}, nil
	}
	return nil, fmt.Errorf("netags: unknown estimate method %d", opts.Method)
}

// IdentifyOptions configures IdentifyMissing.
type IdentifyOptions struct {
	// FrameSize is the per-round frame size (0 = sized to the inventory).
	FrameSize int
	// MaxRounds bounds the number of TRP executions (default 16).
	MaxRounds int
	// Seed derives the per-round request seeds.
	Seed uint64
}

// IdentifyResult reports an identification run.
type IdentifyResult struct {
	// Present and Absent partition the classified inventory IDs; both
	// classifications are certain under a reliable channel and a closed
	// system.
	Present []uint64
	Absent  []uint64
	// Undetermined lists IDs still unresolved at the round bound.
	Undetermined []uint64
	// Complete reports full classification.
	Complete bool
	// Rounds is the number of executions used.
	Rounds int
	// Cost aggregates time and energy over all rounds.
	Cost Cost
}

// IdentifyMissing classifies every inventory ID as present or absent with
// certainty by iterating TRP executions with fresh hash seeds — the
// exhaustive follow-up to DetectMissing's yes/no answer. Only supported on
// single-reader systems (the iteration logic needs one coherent bitmap per
// seed).
func (s *System) IdentifyMissing(inventory []uint64, opts IdentifyOptions) (*IdentifyResult, error) {
	if len(s.networks) != 1 {
		return nil, fmt.Errorf("netags: IdentifyMissing supports a single reader, have %d", len(s.networks))
	}
	if len(inventory) == 0 {
		return nil, fmt.Errorf("netags: empty inventory")
	}
	out, err := trp.Identify(s.networks[0], inventory, s.ids, trp.IdentifyOptions{
		FrameSize: opts.FrameSize,
		MaxRounds: opts.MaxRounds,
		Seed:      opts.Seed,
		Tracer:    s.tracer,
	})
	if err != nil {
		return nil, err
	}
	return &IdentifyResult{
		Present:      out.Present,
		Absent:       out.Absent,
		Undetermined: out.Undetermined,
		Complete:     out.Complete,
		Rounds:       out.Rounds,
		Cost:         s.cost(out.Clock, out.Meter),
	}, nil
}

// DetectOptions configures DetectMissing.
type DetectOptions struct {
	// Tolerance is the m of the detection requirement: absences beyond m
	// must be detected (default 0.5% of the inventory).
	Tolerance int
	// Delta is the required single-execution detection probability
	// (default 0.95).
	Delta float64
	// FrameSize overrides the frame size (0 = derive from the inventory
	// size, Tolerance and Delta).
	FrameSize int
	// Seed is the request seed η.
	Seed uint64
	// LossProb enables the unreliable-channel extension.
	LossProb float64
	// Executions repeats the protocol with fresh seeds until something is
	// detected (default 1). k clean executions push the miss probability
	// to (1−δ)^k — the paper's §V-A remark.
	Executions int
}

// DetectResult reports one missing-tag detection execution.
type DetectResult struct {
	// Missing reports whether at least one inventory tag was detected
	// absent.
	Missing bool
	// Suspects lists inventory IDs that are provably absent (their slot
	// came back idle). Under a reliable channel there are no false accusations.
	Suspects []uint64
	// UnknownTags reports busy slots no inventory tag maps to — evidence
	// of tags the reader does not know about.
	UnknownTags bool
	// Rounds is the total CCM session depth over all executions.
	Rounds int
	// Executions is how many protocol executions ran (repetition stops at
	// the first detection).
	Executions int
	// Cost accumulates time and energy over all executions.
	Cost Cost
	// Truncated warns that a session ended with data still in flight;
	// absences reported from a truncated session may be spurious (see
	// SystemOptions.CheckingFrameLen).
	Truncated bool
}

// DetectMissing runs one TRP execution over CCM (paper §V): the reader
// predicts the status bitmap from the inventory and flags predicted-busy
// slots that come back idle. inventory is the ID set the reader believes
// should be present.
func (s *System) DetectMissing(inventory []uint64, opts DetectOptions) (*DetectResult, error) {
	if len(inventory) == 0 {
		return nil, fmt.Errorf("netags: empty inventory")
	}
	if opts.Delta == 0 {
		opts.Delta = 0.95
	}
	if opts.Tolerance == 0 {
		opts.Tolerance = len(inventory) / 200
		if opts.Tolerance == 0 {
			opts.Tolerance = 1
		}
	}
	f := opts.FrameSize
	if f == 0 {
		var err error
		f, err = trp.FrameSizeFor(len(inventory), opts.Tolerance, opts.Delta)
		if err != nil {
			return nil, err
		}
	}
	if opts.Executions == 0 {
		opts.Executions = 1
	}
	if opts.Executions < 0 {
		return nil, fmt.Errorf("netags: negative execution count %d", opts.Executions)
	}
	out := &DetectResult{}
	var clock energy.Clock
	meter := energy.NewMeter(s.TagCount())
	seeds := prng.New(opts.Seed)
	for exec := 1; exec <= opts.Executions; exec++ {
		seed := seeds.Uint64()
		plan, err := trp.NewPlan(inventory, f, seed)
		if err != nil {
			return nil, err
		}
		res, err := s.runSession(core.Config{
			FrameSize: f,
			Seed:      seed,
			Sampling:  1,
			LossProb:  opts.LossProb,
			LossSeed:  seeds.Uint64(),
		})
		if err != nil {
			return nil, err
		}
		det, err := plan.Detect(res.Bitmap)
		if err != nil {
			return nil, err
		}
		out.Executions = exec
		out.Rounds += res.Rounds
		out.Truncated = out.Truncated || res.Truncated
		out.UnknownTags = out.UnknownTags || len(det.UnexpectedBusy) > 0
		clock.Add(res.Clock)
		if err := meter.Merge(res.Meter); err != nil {
			return nil, fmt.Errorf("netags: execution %d: %w", exec, err)
		}
		if t := s.tracer; t != nil {
			t.Trace(obs.Event{
				Kind:      obs.KindPhase,
				Protocol:  obs.ProtoTRP,
				Phase:     "detect",
				Round:     exec,
				FrameSize: f,
				Count:     len(det.EmptySlots),
				Pending:   det.Missing,
				Seed:      seed,
			})
		}
		if det.Missing {
			out.Missing = true
			out.Suspects = det.Suspects
			break
		}
	}
	out.Cost = s.cost(clock, meter)
	return out, nil
}

// SearchOptions configures SearchTags.
type SearchOptions struct {
	// Hashes is the Bloom width k (default 3).
	Hashes int
	// FrameSize overrides the frame size (0 = derive from the population
	// and TargetFalsePositive).
	FrameSize int
	// TargetFalsePositive bounds the false-positive rate when the frame
	// size is derived (default 0.05).
	TargetFalsePositive float64
	// Seed identifies the request.
	Seed uint64
	// LossProb enables the unreliable-channel extension.
	LossProb float64
}

// SearchResult reports one tag search execution.
type SearchResult struct {
	// Found lists wanted IDs present in the system (up to the
	// false-positive rate).
	Found []uint64
	// Absent lists wanted IDs provably not in the system.
	Absent []uint64
	// ExpectedFalsePositiveRate is the analytical rate for this execution.
	ExpectedFalsePositiveRate float64
	// Rounds is the CCM session depth.
	Rounds int
	// Cost is the session's time and energy.
	Cost Cost
	// Truncated warns that the session ended with data still in flight;
	// "provably absent" claims from a truncated session may be spurious.
	Truncated bool
}

// SearchTags tests which of the wanted IDs are present, with every tag
// Bloom-encoding itself into the frame over CCM (paper §III-B).
func (s *System) SearchTags(wanted []uint64, opts SearchOptions) (*SearchResult, error) {
	if opts.Hashes == 0 {
		opts.Hashes = search.DefaultHashes
	}
	if opts.Hashes < 0 {
		return nil, fmt.Errorf("netags: negative hash count %d", opts.Hashes)
	}
	if opts.TargetFalsePositive == 0 {
		opts.TargetFalsePositive = 0.05
	}
	f := opts.FrameSize
	if f == 0 {
		var err error
		f, err = search.FrameSizeFor(max(s.reachable, 1), opts.Hashes, opts.TargetFalsePositive)
		if err != nil {
			return nil, err
		}
	}
	res, err := s.runSession(core.Config{
		FrameSize: f,
		Seed:      opts.Seed,
		Picker:    search.Picker(opts.Seed, opts.Hashes, f),
		LossProb:  opts.LossProb,
		LossSeed:  opts.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	found, absent := search.EvaluateObserved(s.tracer, res.Bitmap, wanted, opts.Seed, opts.Hashes)
	return &SearchResult{
		Found:                     found,
		Absent:                    absent,
		ExpectedFalsePositiveRate: search.FalsePositiveRate(s.reachable, f, opts.Hashes),
		Rounds:                    res.Rounds,
		Cost:                      s.cost(res.Clock, res.Meter),
		Truncated:                 res.Truncated,
	}, nil
}

// CollectOptions configures CollectIDs.
type CollectOptions struct {
	// Contention switches to the contention-based CICP variant instead of
	// serialized SICP.
	Contention bool
	// ContentionWindow is the CSMA window (default 8).
	ContentionWindow int
	// Seed drives the CSMA backoffs.
	Seed uint64
}

// CollectResult reports one ID-collection run.
type CollectResult struct {
	// IDs lists every tag identifier delivered to the reader(s).
	IDs []uint64
	// TreeDepth is the spanning tree depth.
	TreeDepth int
	// Cost is the run's time and energy.
	Cost Cost
}

// CollectIDs runs the baseline ID-collection protocol (SICP, or CICP with
// Contention set) and returns every collected tag ID. This is the approach
// the paper compares CCM against: correct, but one to two orders of
// magnitude more expensive. With multiple readers, each runs in its own
// window and duplicates are removed.
func (s *System) CollectIDs(opts CollectOptions) (*CollectResult, error) {
	sopts := sicp.Options{
		Seed:             opts.Seed,
		ContentionWindow: opts.ContentionWindow,
		IDs:              s.ids,
		Tracer:           s.tracer,
	}
	run := sicp.Collect
	if opts.Contention {
		run = sicp.CollectCICP
	}
	out := &CollectResult{}
	var clock energy.Clock
	meter := energy.NewMeter(s.TagCount())
	seen := make(map[uint64]bool)
	for ri, nw := range s.networks {
		res, err := run(nw, sopts)
		if err != nil {
			return nil, fmt.Errorf("netags: reader %d: %w", ri, err)
		}
		for _, id := range res.Collected {
			if !seen[id] {
				seen[id] = true
				out.IDs = append(out.IDs, id)
			}
		}
		clock.Add(res.Clock)
		if err := meter.Merge(res.Meter); err != nil {
			return nil, fmt.Errorf("netags: reader %d: %w", ri, err)
		}
		if res.TreeDepth > out.TreeDepth {
			out.TreeDepth = res.TreeDepth
		}
	}
	out.Cost = s.cost(clock, meter)
	return out, nil
}

// SessionOptions configures a raw CCM bitmap collection.
type SessionOptions struct {
	// FrameSize is f (required).
	FrameSize int
	// Seed identifies the request.
	Seed uint64
	// Sampling is the participation probability p (default 1).
	Sampling float64
	// DisableIndicatorVector runs the §III-D ablation.
	DisableIndicatorVector bool
	// LossProb enables the unreliable-channel extension.
	LossProb float64
	// OnRound, if non-nil, receives a live report after each round — the
	// tier-by-tier convergence as it happens. With multiple readers the
	// callback fires for every reader's window.
	OnRound func(RoundInfo)
}

// RoundInfo is the live per-round report of a CCM session.
type RoundInfo struct {
	// Round is 1-based.
	Round int
	// Transmitters is the number of tags that transmitted in the frame.
	Transmitters int
	// BitsSent is the number of frame bits transmitted this round.
	BitsSent int
	// NewBusy is the number of slots the reader first saw busy this round.
	NewBusy int
	// KnownBusy is the reader's cumulative busy count.
	KnownBusy int
	// CheckSlots is the number of checking-frame slots executed.
	CheckSlots int
	// MorePending reports whether another round follows.
	MorePending bool
}

// SessionResult reports a raw CCM session.
type SessionResult struct {
	// BusySlots lists the busy slot indices of the final bitmap B.
	BusySlots []int
	// FrameSize echoes f.
	FrameSize int
	// Rounds is the session depth (= the tier count the data crossed).
	Rounds int
	// Truncated reports an incomplete session (round bound or checking
	// frame too short).
	Truncated bool
	// Cost is the session's time and energy.
	Cost Cost
}

// CollectBitmap runs one raw CCM session (Algorithm 1) and returns the
// collected information bitmap — the primitive everything else builds on.
func (s *System) CollectBitmap(opts SessionOptions) (*SessionResult, error) {
	sampling := opts.Sampling
	if sampling == 0 {
		sampling = 1
	}
	cfg := core.Config{
		FrameSize:              opts.FrameSize,
		Seed:                   opts.Seed,
		Sampling:               sampling,
		DisableIndicatorVector: opts.DisableIndicatorVector,
		LossProb:               opts.LossProb,
		LossSeed:               opts.Seed + 1,
	}
	if opts.OnRound != nil {
		onRound := opts.OnRound
		cfg.Trace = func(tr core.RoundTrace) {
			onRound(RoundInfo(tr))
		}
	}
	if opts.DisableIndicatorVector && len(s.networks) > 0 {
		cfg.MaxRounds = 4 * s.ranges.CheckingFrameLen()
	}
	res, err := s.runSession(cfg)
	if err != nil {
		return nil, err
	}
	return &SessionResult{
		BusySlots: res.Bitmap.Indices(),
		FrameSize: opts.FrameSize,
		Rounds:    res.Rounds,
		Truncated: res.Truncated,
		Cost:      s.cost(res.Clock, res.Meter),
	}, nil
}

package netags

import (
	"fmt"
	"time"
)

// RadioProfile converts the simulator's abstract units — slot counts and
// bits — into wall-clock time and battery energy. The paper deliberately
// reports slots and bits because the Gen2 standard leaves slot timing open
// (§VI-B1) and because RX and TX draw are transceiver-specific (§VI-B2,
// citing the TI CC1120). A profile pins those physical constants so
// downstream users can budget real deployments.
type RadioProfile struct {
	// ShortSlot is the duration of a 1-bit tag slot, including guard times.
	ShortSlot time.Duration
	// LongSlot is the duration of a 96-bit reader-message slot.
	LongSlot time.Duration
	// TxPowerMilliwatts is the tag's radio power draw while transmitting.
	TxPowerMilliwatts float64
	// RxPowerMilliwatts is the draw while receiving or carrier-sensing.
	RxPowerMilliwatts float64
	// BitRate is the tag link rate in bits per second, used to convert a
	// tag's sent/received bit counts into on-air time.
	BitRate float64
}

// CC1120Profile returns a profile modeled on the TI CC1120 sub-GHz
// transceiver the paper cites, on a Gen2-like link:
//
//   - 64 kbps FM0 tag link rate; a 1-bit slot costs ~100 µs with guard
//     times, a 96-bit message slot ~1.6 ms.
//   - TX at +10 dBm draws ≈45 mA at 3 V (135 mW); RX draws ≈22 mA (66 mW).
//
// RX and TX energies per bit are the same order of magnitude — the paper's
// §VI-B2 observation that makes received bits the dominant energy cost.
func CC1120Profile() RadioProfile {
	return RadioProfile{
		ShortSlot:         100 * time.Microsecond,
		LongSlot:          1600 * time.Microsecond,
		TxPowerMilliwatts: 135,
		RxPowerMilliwatts: 66,
		BitRate:           64_000,
	}
}

// Validate reports whether the profile is physically meaningful.
func (p RadioProfile) Validate() error {
	if p.ShortSlot <= 0 || p.LongSlot <= 0 {
		return fmt.Errorf("netags: slot durations must be positive, got %v/%v", p.ShortSlot, p.LongSlot)
	}
	if p.TxPowerMilliwatts <= 0 || p.RxPowerMilliwatts <= 0 {
		return fmt.Errorf("netags: radio power draws must be positive")
	}
	if p.BitRate <= 0 {
		return fmt.Errorf("netags: bit rate must be positive")
	}
	return nil
}

// PhysicalCost is a Cost expressed in wall-clock and battery units.
type PhysicalCost struct {
	// Duration is the operation's total air time.
	Duration time.Duration
	// AvgTagEnergyMicrojoules is the mean per-tag radio energy.
	AvgTagEnergyMicrojoules float64
	// MaxTagEnergyMicrojoules bounds the worst-case per-tag energy. It
	// combines the worst sent and worst received counts, which different
	// tags may hold, so it is an upper bound on any single tag's spend.
	MaxTagEnergyMicrojoules float64
}

// Physical converts a Cost under the given radio profile. It returns an
// error if the profile is invalid.
func (c Cost) Physical(p RadioProfile) (PhysicalCost, error) {
	if err := p.Validate(); err != nil {
		return PhysicalCost{}, err
	}
	bitSeconds := func(bits float64) float64 { return bits / p.BitRate }
	energyMicro := func(sentBits, recvBits float64) float64 {
		tx := bitSeconds(sentBits) * p.TxPowerMilliwatts // mW·s = mJ
		rx := bitSeconds(recvBits) * p.RxPowerMilliwatts
		return (tx + rx) * 1000 // mJ → µJ
	}
	return PhysicalCost{
		Duration: time.Duration(c.ShortSlots)*p.ShortSlot +
			time.Duration(c.LongSlots)*p.LongSlot,
		AvgTagEnergyMicrojoules: energyMicro(c.AvgBitsSent, c.AvgBitsReceived),
		MaxTagEnergyMicrojoules: energyMicro(float64(c.MaxBitsSent), float64(c.MaxBitsReceived)),
	}, nil
}

package netags

import (
	"math"
	"testing"
	"time"
)

func TestCC1120ProfileValid(t *testing.T) {
	if err := CC1120Profile().Validate(); err != nil {
		t.Fatalf("default profile invalid: %v", err)
	}
}

func TestProfileValidation(t *testing.T) {
	bad := []RadioProfile{
		{},
		{ShortSlot: time.Microsecond, LongSlot: time.Microsecond, TxPowerMilliwatts: 1, RxPowerMilliwatts: 1},
		{ShortSlot: time.Microsecond, LongSlot: time.Microsecond, TxPowerMilliwatts: 1, BitRate: 1},
		{ShortSlot: -time.Microsecond, LongSlot: time.Microsecond, TxPowerMilliwatts: 1, RxPowerMilliwatts: 1, BitRate: 1},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid profile accepted", i)
		}
	}
}

func TestPhysicalConversion(t *testing.T) {
	c := Cost{
		ShortSlots:      1000,
		LongSlots:       10,
		MaxBitsSent:     64_000, // one second of TX at 64 kbps
		MaxBitsReceived: 0,
		AvgBitsSent:     0,
		AvgBitsReceived: 64_000, // one second of RX
	}
	p := CC1120Profile()
	pc, err := c.Physical(p)
	if err != nil {
		t.Fatal(err)
	}
	wantDur := 1000*p.ShortSlot + 10*p.LongSlot
	if pc.Duration != wantDur {
		t.Fatalf("duration = %v, want %v", pc.Duration, wantDur)
	}
	// One second of TX at 135 mW = 135 mJ = 135000 µJ.
	if math.Abs(pc.MaxTagEnergyMicrojoules-135000) > 1 {
		t.Fatalf("max energy = %v µJ, want 135000", pc.MaxTagEnergyMicrojoules)
	}
	// One second of RX at 66 mW = 66000 µJ.
	if math.Abs(pc.AvgTagEnergyMicrojoules-66000) > 1 {
		t.Fatalf("avg energy = %v µJ, want 66000", pc.AvgTagEnergyMicrojoules)
	}
}

func TestPhysicalInvalidProfile(t *testing.T) {
	if _, err := (Cost{}).Physical(RadioProfile{}); err == nil {
		t.Fatal("invalid profile accepted")
	}
}

// TestPhysicalEndToEnd sanity-checks the headline energy story in real
// units: one estimation session should cost an average tag well under a
// millijoule-scale budget, while ID collection costs an order of magnitude
// more.
func TestPhysicalEndToEnd(t *testing.T) {
	sys := testSystem(t, 2000, 6, 77)
	est, err := sys.EstimateCardinality(EstimateOptions{Beta: 0.1, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	col, err := sys.CollectIDs(CollectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	p := CC1120Profile()
	pe, err := est.Cost.Physical(p)
	if err != nil {
		t.Fatal(err)
	}
	pcol, err := col.Cost.Physical(p)
	if err != nil {
		t.Fatal(err)
	}
	if pe.AvgTagEnergyMicrojoules <= 0 || pe.Duration <= 0 {
		t.Fatalf("degenerate physical cost: %+v", pe)
	}
	if pcol.AvgTagEnergyMicrojoules <= 2*pe.AvgTagEnergyMicrojoules {
		t.Fatalf("ID collection energy %.0f µJ not well above estimation's %.0f µJ",
			pcol.AvgTagEnergyMicrojoules, pe.AvgTagEnergyMicrojoules)
	}
}

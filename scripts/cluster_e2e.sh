#!/usr/bin/env bash
# Cluster failover e2e: three ccmserve workers behind ccmrouter.
#
#  Phase 0  single-node reference: run every spec on one worker and keep
#           the result payloads as ground truth.
#  Phase A  start workers + router, check /api/v1/cluster topology, and
#           gate a gentle ccmload run through the router on its own
#           verdicts (p99 bound, no alerts, cluster series non-empty,
#           -report-json carries the shed accounting).
#  Phase B  submit the specs through the router, byte-compare each result
#           against the reference, and record which backend owns which key
#           (X-CCM-Backend).
#  Phase C  kill -9 one owning worker: resubmits must fail over to the
#           next ring owner and still byte-match the reference, the
#           victim's breaker must show open on /metrics, and the
#           cluster_breaker_open alert must fire on /api/v1/alerts.
#  Phase D  restart the worker on the same port: half-open probes close
#           the breaker, the alert resolves, and the router log carries
#           both transitions.
#
# Re-execution is safe because jobs are content-addressed: the same spec
# yields byte-identical results on any worker, so a failover that re-runs
# a job cannot change what the client reads back.
#
# Usage: scripts/cluster_e2e.sh   (from the repo root; needs go + curl)
set -euo pipefail

WORK=$(mktemp -d)
PIDFILE="$WORK/pids"
touch "$PIDFILE"
cleanup() {
    while read -r pid; do kill -9 "$pid" 2>/dev/null || true; done <"$PIDFILE"
    rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "cluster_e2e: FAIL: $*" >&2; exit 1; }

# Fixed ports so a killed worker can come back on the same address the
# router was configured with. The range is arbitrary but uncommon.
ROUTER=127.0.0.1:19380
W1=127.0.0.1:19381
W2=127.0.0.1:19382
W3=127.0.0.1:19383

# Six small seeded specs: fast enough for CI, enough distinct
# content-addresses that every backend owns at least part of the keyspace
# with overwhelming probability.
NSPECS=6
spec() { printf '{"spec":{"n":500,"trials":1,"r_values":[2,3,4],"seed":%d}}' "$1"; }

echo "cluster_e2e: building ccmserve + ccmrouter + ccmload"
go build -o "$WORK/ccmserve" ./cmd/ccmserve
go build -o "$WORK/ccmrouter" ./cmd/ccmrouter
go build -o "$WORK/ccmload" ./cmd/ccmload

job_id() { sed -n 's/.*"id":"\([0-9a-f]\{64\}\)".*/\1/p' <<<"$1" | head -1; }

await_result() { # await_result <addr> <id> <outfile>
    local code
    for _ in $(seq 1 300); do
        code=$(curl -s -o "$3" -w '%{http_code}' "http://$1/api/v1/jobs/$2/result")
        [ "$code" = 200 ] && return
        sleep 0.2
    done
    die "job $2 never finished (last result status $code)"
}

# start_worker <addr> <logfile> <pidfile>: a plain ccmserve worker on a
# fixed port, no telemetry engine of its own (the router is the edge).
start_worker() {
    local addr=$1 log=$2 pidfile=$3
    "$WORK/ccmserve" -addr "$addr" -pool 2 -job-workers 1 -ts-resolution 0 \
        -log-format json >/dev/null 2>"$log" &
    echo $! >"$pidfile"
    cat "$pidfile" >>"$PIDFILE"
    for _ in $(seq 1 100); do
        grep -q 'listening on' "$log" && return
        sleep 0.1
    done
    die "worker $addr never reported its address (log: $(cat "$log"))"
}

# --- Phase 0: single-node reference results ------------------------------
"$WORK/ccmserve" -addr 127.0.0.1:0 -pool 2 -job-workers 1 -ts-resolution 0 \
    -log-format json >/dev/null 2>"$WORK/ref.log" &
echo $! >>"$PIDFILE"
for _ in $(seq 1 100); do
    grep -q 'listening on' "$WORK/ref.log" && break
    sleep 0.1
done
REF_ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$WORK/ref.log" | head -1)
[ -n "$REF_ADDR" ] || die "reference worker never reported its address"

for i in $(seq 1 "$NSPECS"); do
    ID=$(job_id "$(curl -s "http://$REF_ADDR/api/v1/jobs" -d "$(spec "$i")")")
    [ -n "$ID" ] || die "reference submit $i returned no job id"
    echo "$ID" >"$WORK/id.$i"
    await_result "$REF_ADDR" "$ID" "$WORK/ref.$i.bin"
done
echo "cluster_e2e: reference results captured ($NSPECS specs on $REF_ADDR)"

# --- Phase A: cluster up, topology + gentle load gate --------------------
start_worker "$W1" "$WORK/w1.log" "$WORK/w1.pid"
start_worker "$W2" "$WORK/w2.log" "$WORK/w2.pid"
start_worker "$W3" "$WORK/w3.log" "$WORK/w3.pid"

# Tight breaker so two failed proxy attempts trip it, short cooldown so
# recovery probes start quickly, fast sampler so the threshold alert's
# 10s window fills with enough points to judge.
"$WORK/ccmrouter" -addr "$ROUTER" -backends "$W1,$W2,$W3" \
    -breaker-consec 2 -breaker-cooldown 2s -ts-resolution 200ms \
    -log-format json >/dev/null 2>"$WORK/router.log" &
echo $! >>"$PIDFILE"
for _ in $(seq 1 100); do
    grep -q 'listening on' "$WORK/router.log" && break
    sleep 0.1
done
grep -q 'listening on' "$WORK/router.log" \
    || die "router never reported its address (log: $(cat "$WORK/router.log"))"
echo "cluster_e2e: router on $ROUTER fronting $W1 $W2 $W3"

CLUSTER=$(curl -s "http://$ROUTER/api/v1/cluster")
CLOSED=$(grep -o '"state":"closed"' <<<"$CLUSTER" | wc -l)
[ "$CLOSED" -eq 3 ] || die "/api/v1/cluster shows $CLOSED closed backends, want 3: $CLUSTER"

"$WORK/ccmload" -addr "$ROUTER" -rps 2 -duration 5s -drain 30s \
    -large-ratio 0 -max-p99 30s -fail-on-alerts \
    -check-series cluster_submits_total,cluster_forwarded_total,runtime_goroutines \
    -report-json "$WORK/load_report.json" \
    || die "gentle load through the router violated a gate (exit $?)"
grep -q '"shed_responses"' "$WORK/load_report.json" \
    || die "load report missing shed_responses: $(cat "$WORK/load_report.json")"
grep -q '"shed_rate"' "$WORK/load_report.json" \
    || die "load report missing shed_rate: $(cat "$WORK/load_report.json")"
echo "cluster_e2e: phase A passed (topology + load gates + shed report)"

# --- Phase B: routed submissions byte-match the reference ----------------
for i in $(seq 1 "$NSPECS"); do
    RESP=$(curl -s -D "$WORK/hdr.$i" "http://$ROUTER/api/v1/jobs" -d "$(spec "$i")")
    [ "$(job_id "$RESP")" = "$(cat "$WORK/id.$i")" ] \
        || die "router produced a different job id for spec $i: $RESP"
    tr -d '\r' <"$WORK/hdr.$i" | sed -n 's/^[Xx]-[Cc][Cc][Mm]-[Bb]ackend: //p' >"$WORK/owner.$i"
    [ -s "$WORK/owner.$i" ] || die "submit $i reply carries no X-CCM-Backend header"
    await_result "$ROUTER" "$(cat "$WORK/id.$i")" "$WORK/routed.$i.bin"
    cmp "$WORK/ref.$i.bin" "$WORK/routed.$i.bin" \
        || die "routed result $i differs from single-node reference"
done
echo "cluster_e2e: $NSPECS routed results byte-identical to reference"

# --- Phase C: kill an owning worker, fail over, breaker + alert ----------
VICTIM=$(cat "$WORK/owner.1")
case "$VICTIM" in
"$W1") VICTIM_PID=$WORK/w1.pid ;;
"$W2") VICTIM_PID=$WORK/w2.pid ;;
"$W3") VICTIM_PID=$WORK/w3.pid ;;
*) die "owner of spec 1 is not a configured backend: $VICTIM" ;;
esac
kill -9 "$(cat "$VICTIM_PID")"
echo "cluster_e2e: killed $VICTIM (owner of spec 1)"

# Every spec must still come back byte-identical: keys owned by the victim
# fail over to the next ring owner and re-execute there (content-addressed,
# so the bytes cannot differ); the rest are untouched.
for i in $(seq 1 "$NSPECS"); do
    curl -s "http://$ROUTER/api/v1/jobs" -d "$(spec "$i")" >/dev/null
    await_result "$ROUTER" "$(cat "$WORK/id.$i")" "$WORK/failover.$i.bin"
    cmp "$WORK/ref.$i.bin" "$WORK/failover.$i.bin" \
        || die "post-kill result $i differs from single-node reference"
done
echo "cluster_e2e: $NSPECS post-kill results byte-identical (keyspace re-routed)"

METRICS=$(curl -s "http://$ROUTER/metrics")
grep -q "netags_cluster_breaker_state{backend=\"$VICTIM\"} [12]" <<<"$METRICS" \
    || die "/metrics does not show $VICTIM breaker tripped"
FAILOVERS=$(grep '^netags_cluster_failovers_total' <<<"$METRICS" | awk '{print $2}')
[ "${FAILOVERS:-0}" -gt 0 ] || die "/metrics shows no failovers after the kill"

firing() { curl -s "http://$ROUTER/api/v1/alerts" | grep -o '"firing":[0-9]\+' | head -1 | cut -d: -f2; }

FIRED=
for _ in $(seq 1 300); do # threshold rule needs the 10s window mean >= 0.5
    if [ "$(firing)" -gt 0 ]; then FIRED=1; break; fi
    sleep 0.1
done
[ -n "$FIRED" ] || die "cluster_breaker_open never fired after the kill"
curl -s "http://$ROUTER/api/v1/alerts" | grep -q '"rule":"cluster_breaker_open"' \
    || die "firing alert is not cluster_breaker_open"
echo "cluster_e2e: breaker open on /metrics, cluster_breaker_open firing"

# --- Phase D: restart the worker, breaker closes, alert resolves ---------
case "$VICTIM" in
"$W1") start_worker "$W1" "$WORK/w1b.log" "$WORK/w1b.pid" ;;
"$W2") start_worker "$W2" "$WORK/w2b.log" "$WORK/w2b.pid" ;;
"$W3") start_worker "$W3" "$WORK/w3b.log" "$WORK/w3b.pid" ;;
esac
echo "cluster_e2e: restarted worker on $VICTIM"

# Traffic drives recovery: once the cooldown lapses, the next submission
# for the victim's keyspace runs as a half-open probe; enough successes
# close the breaker. Resubmits are cache-hits elsewhere and re-executions
# on the rebooted worker — cheap either way.
CLOSED=
for _ in $(seq 1 200); do
    curl -s "http://$ROUTER/api/v1/jobs" -d "$(spec 1)" >/dev/null
    if curl -s "http://$ROUTER/metrics" \
        | grep -q "netags_cluster_breaker_state{backend=\"$VICTIM\"} 0"; then
        CLOSED=1
        break
    fi
    sleep 0.3
done
[ -n "$CLOSED" ] || die "breaker for $VICTIM never closed after restart"
echo "cluster_e2e: breaker closed via half-open probes"

RESOLVED=
for _ in $(seq 1 300); do # the 10s window mean must fall back under 0.5
    if [ "$(firing)" -eq 0 ]; then RESOLVED=1; break; fi
    sleep 0.1
done
[ -n "$RESOLVED" ] || die "cluster_breaker_open never resolved after recovery"

grep -q '"msg":"breaker state".*"to":"open"' "$WORK/router.log" \
    || die "router log missing the open transition"
grep -q '"msg":"breaker state".*"to":"closed"' "$WORK/router.log" \
    || die "router log missing the closed transition"
echo "cluster_e2e: PASS (failover byte-identical, breaker lifecycle on metrics, alerts, and log)"

#!/usr/bin/env bash
# Load smoke for the telemetry engine: start ccmserve with a fast sampler
# and a tight burn-rate rule, then
#
#  Phase A  drive gentle load with ccmload and let its own verdicts gate:
#           p99 bound holds, no alert fires, and the serve/sim/runtime
#           time series are all non-empty on /api/v1/timeseries.
#  Phase B  induce overload (pool 1, large jobs, high RPS) and watch the
#           burn-rate alert transition firing -> resolved after the load
#           drops, on /api/v1/alerts, on /metrics (netags_alert_active),
#           and in the daemon's structured log.
#
# Usage: scripts/load_smoke.sh   (from the repo root; needs go + curl)
set -euo pipefail

WORK=$(mktemp -d)
PIDFILE="$WORK/pids"
touch "$PIDFILE"
cleanup() {
    while read -r pid; do kill -9 "$pid" 2>/dev/null || true; done <"$PIDFILE"
    rm -rf "$WORK"
}
trap cleanup EXIT

die() { echo "load_smoke: FAIL: $*" >&2; exit 1; }

echo "load_smoke: building ccmserve + ccmload"
go build -o "$WORK/ccmserve" ./cmd/ccmserve
go build -o "$WORK/ccmload" ./cmd/ccmload

# One burn-rate rule tuned for a smoke test: jobs finishing end-to-end
# under ~1s are good, a 10% error budget, burn 2x over an 8s window, and
# at least 3 jobs of traffic before a verdict. Gentle load passes easily;
# a saturated 1-worker pool blows through it within seconds.
RULES="$WORK/rules.json"
cat >"$RULES" <<'EOF'
[{"name":"e2e_burn","good":"slo_e2e_good_1s","total":"slo_e2e_total",
  "objective":0.9,"burn":2,"min_total":3,"window_s":8}]
EOF

"$WORK/ccmserve" -addr 127.0.0.1:0 -pool 1 -job-workers 1 -queue 256 \
    -ts-resolution 200ms -slo-rules "$RULES" -log-format json \
    >/dev/null 2>"$WORK/daemon.log" &
echo $! >>"$PIDFILE"
for _ in $(seq 1 100); do
    grep -q 'listening on' "$WORK/daemon.log" && break
    sleep 0.1
done
ADDR=$(sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$WORK/daemon.log" | head -1)
[ -n "$ADDR" ] || die "daemon never reported its address (log: $(cat "$WORK/daemon.log"))"
echo "load_smoke: daemon on $ADDR"

# --- Phase A: gentle load, ccmload's own gates must all pass -------------
"$WORK/ccmload" -addr "$ADDR" -rps 1.5 -duration 8s -drain 30s \
    -large-ratio 0 -max-p99 20s -fail-on-alerts \
    -check-series serve_queue_len,serve_jobs_executed_total,sim_sessions_total,runtime_goroutines \
    || die "gentle load violated an SLO gate (exit $?)"
echo "load_smoke: phase A passed (p99 bound, no alerts, series non-empty)"

# --- Phase B: overload, watch the burn-rate alert fire then resolve ------
# Large jobs at 10 rps against one worker: queue wait alone pushes e2e far
# past the 1s good threshold. No gates here — the point is the transition.
"$WORK/ccmload" -addr "$ADDR" -rps 10 -duration 6s -drain 60s \
    -large-ratio 1 >/dev/null &
LOAD_PID=$!
echo "$LOAD_PID" >>"$PIDFILE"

# The top-level "firing" count is the only numeric firing field — the
# per-rule states carry booleans.
firing() { curl -s "http://$ADDR/api/v1/alerts" | grep -o '"firing":[0-9]\+' | head -1 | cut -d: -f2; }

FIRED=
for _ in $(seq 1 200); do # up to 20s for the burn verdict
    if [ "$(firing)" -gt 0 ]; then FIRED=1; break; fi
    sleep 0.1
done
[ -n "$FIRED" ] || die "overload never fired the burn-rate alert"
curl -s "http://$ADDR/metrics" | grep -q 'netags_alert_active{rule="e2e_burn"} 1' \
    || die "/metrics does not show netags_alert_active 1 while firing"
echo "load_smoke: e2e_burn fired under overload"

wait "$LOAD_PID" || true # rejections/slow jobs are expected here
RESOLVED=
for _ in $(seq 1 300); do # the 8s window must go quiet: allow 30s
    if [ "$(firing)" -eq 0 ]; then RESOLVED=1; break; fi
    sleep 0.1
done
[ -n "$RESOLVED" ] || die "alert never resolved after the load dropped"
echo "load_smoke: e2e_burn resolved after load dropped"

grep -q '"msg":"slo alert firing"' "$WORK/daemon.log" \
    || die "daemon log missing the firing transition"
grep -q '"msg":"slo alert resolved"' "$WORK/daemon.log" \
    || die "daemon log missing the resolved transition"
echo "load_smoke: PASS (alert lifecycle observed on API, metrics, and log)"

#!/usr/bin/env bash
# End-to-end crash-resume smoke for ccmserve: start the daemon with a
# checkpoint dir, submit a sweep, follow its NDJSON stream, kill -9 the
# process at ~50% of the points, restart on the same dir, resubmit the
# same spec, and verify the resumed job (a) reports resumed points,
# (b) finishes, (c) produces a byte-identical result to an uninterrupted
# run, and (d) carries a full lifecycle timeline on /jobs/{id}/trace
# (checkpoint_restored included) with the SLO histogram families live on
# /metrics and X-Request-ID correlation on every response. Exercises
# /api/v1/jobs, /stream, /trace, /result, and /metrics end to end.
#
# Usage: scripts/serve_e2e.sh   (from the repo root; needs go + curl)
set -euo pipefail

WORK=$(mktemp -d)
CKPT="$WORK/ckpt"
mkdir -p "$CKPT"
PIDFILE="$WORK/pids"
touch "$PIDFILE"
cleanup() {
    while read -r pid; do kill -9 "$pid" 2>/dev/null || true; done <"$PIDFILE"
    rm -rf "$WORK"
}
trap cleanup EXIT

# ~8 points x ~0.5s each with one serialized worker: slow enough to kill
# mid-sweep, fast enough for CI. Seeded, so results are deterministic.
SPEC='{"spec":{"n":2000,"trials":2,"r_values":[2,3,4,5,6,7,8,9],"seed":7}}'
POINTS=8
KILL_AT=$((POINTS / 2))

die() { echo "serve_e2e: FAIL: $*" >&2; exit 1; }

# start_daemon <checkpoint-dir> <logfile> <pidfile>: launches ccmserve on
# an ephemeral port and echoes the bound address. stdout must be detached
# from the caller's pipe or $(start_daemon ...) would block on the daemon.
start_daemon() {
    local dir=$1 log=$2 pidfile=$3
    "$WORK/ccmserve" -addr 127.0.0.1:0 -pool 1 -job-workers 1 \
        -checkpoint-dir "$dir" -checkpoint-ttl 24h -log-format json >/dev/null 2>"$log" &
    echo $! >"$pidfile"
    cat "$pidfile" >>"$PIDFILE"
    for _ in $(seq 1 100); do
        if grep -q 'listening on' "$log"; then
            sed -n 's/.*listening on \([0-9.:]*\).*/\1/p' "$log" | head -1
            return
        fi
        sleep 0.1
    done
    die "daemon never reported its address (log: $(cat "$log"))"
}

submit() { # submit <addr> -> response JSON on stdout
    curl -s "http://$1/api/v1/jobs" -d "$SPEC"
}

job_id() { sed -n 's/.*"id":"\([0-9a-f]\{64\}\)".*/\1/p' <<<"$1" | head -1; }

await_result() { # await_result <addr> <id> <outfile>
    local code
    for _ in $(seq 1 300); do
        code=$(curl -s -o "$3" -w '%{http_code}' "http://$1/api/v1/jobs/$2/result")
        [ "$code" = 200 ] && return
        sleep 0.2
    done
    die "job $2 never finished (last result status $code)"
}

echo "serve_e2e: building ccmserve + ccmload"
go build -o "$WORK/ccmserve" ./cmd/ccmserve
go build -o "$WORK/ccmload" ./cmd/ccmload

# --- Phase 1: submit, stream, kill at ~50% -------------------------------
ADDR=$(start_daemon "$CKPT" "$WORK/daemon1.log" "$WORK/daemon1.pid")
RESP=$(submit "$ADDR")
ID=$(job_id "$RESP")
[ -n "$ID" ] || die "no job id in submit response: $RESP"
echo "serve_e2e: submitted $ID on $ADDR"

# Tail the live stream while the sweep runs; the kill below drops it.
curl -sN "http://$ADDR/api/v1/jobs/$ID/stream" >"$WORK/stream.ndjson" 2>/dev/null &
echo $! >>"$PIDFILE"

CKPT_FILE="$CKPT/$ID.ndjson"
for _ in $(seq 1 600); do
    LINES=0
    [ -f "$CKPT_FILE" ] && LINES=$(wc -l <"$CKPT_FILE")
    [ "$LINES" -ge "$KILL_AT" ] && break
    sleep 0.05
done
[ "$LINES" -ge "$KILL_AT" ] || die "checkpoint never reached $KILL_AT points"
[ "$LINES" -lt "$POINTS" ] || die "sweep finished before the kill (got $LINES points); spec too fast"
kill -9 "$(cat "$WORK/daemon1.pid")"
echo "serve_e2e: killed daemon with $LINES/$POINTS points checkpointed"

grep -q '"event":"point"' "$WORK/stream.ndjson" \
    || die "stream tail captured no point events"

# --- Phase 2: restart on the same dir, resubmit, resume ------------------
ADDR=$(start_daemon "$CKPT" "$WORK/daemon2.log" "$WORK/daemon2.pid")
RESP=$(submit "$ADDR")
[ "$(job_id "$RESP")" = "$ID" ] || die "resubmit produced a different job id: $RESP"
RESUMED=$(sed -n 's/.*"resumed_points":\([0-9]*\).*/\1/p' <<<"$RESP")
[ -n "$RESUMED" ] && [ "$RESUMED" -ge "$KILL_AT" ] \
    || die "resubmit reports resumed_points=$RESUMED, want >= $KILL_AT: $RESP"
echo "serve_e2e: resumed with $RESUMED checkpointed points"
await_result "$ADDR" "$ID" "$WORK/resumed.bin"

# --- Phase 2b: observability of the resumed job --------------------------
# The lifecycle timeline must show the whole story of the resumed run:
# received -> checkpoint_restored -> admitted -> scheduled -> running ->
# point_completed -> completed, with the queue-wait summary computed.
TRACE=$(curl -s "http://$ADDR/api/v1/jobs/$ID/trace")
for stage in received checkpoint_restored admitted scheduled running point_completed completed; do
    grep -q "\"stage\":\"$stage\"" <<<"$TRACE" \
        || die "trace missing stage $stage: $TRACE"
done
grep -q '"queue_wait_ms"' <<<"$TRACE" || die "trace missing queue_wait_ms summary: $TRACE"
grep -q '"class":"interactive"' <<<"$TRACE" || die "trace events carry no class: $TRACE"
echo "serve_e2e: trace timeline complete for resumed job"

# SLO histograms, per-class queue gauges, and the checkpoint GC counter
# must be live on /metrics.
METRICS=$(curl -s "http://$ADDR/metrics")
for family in \
    'netags_serve_queue_wait_ms_bucket{class="interactive"' \
    'netags_serve_point_ms_count' \
    'netags_serve_e2e_ms_count' \
    'netags_http_request_ms_bucket' \
    'netags_serve_queue_class_len{class="bulk"}' \
    'netags_serve_queue_class_len{class="interactive"}' \
    'netags_serve_checkpoint_purged_total'; do
    grep -qF "$family" <<<"$METRICS" || die "/metrics missing $family"
done
echo "serve_e2e: SLO histogram and queue-gauge families live"

# Request-ID correlation: generated when absent, echoed when supplied, and
# attached to the access log lines.
RID=$(curl -s -o /dev/null -D - "http://$ADDR/healthz" | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii][Dd]: //p')
[ -n "$RID" ] || die "no X-Request-ID generated on response"
ECHOED=$(curl -s -o /dev/null -D - -H 'X-Request-ID: e2e-rid-42' "http://$ADDR/healthz" \
    | tr -d '\r' | sed -n 's/^[Xx]-[Rr]equest-[Ii][Dd]: //p')
[ "$ECHOED" = "e2e-rid-42" ] || die "client X-Request-ID not echoed (got '$ECHOED')"
grep -q '"request_id":"e2e-rid-42"' "$WORK/daemon2.log" \
    || die "access log missing the request id (daemon2.log)"
grep -q '"msg":"job admitted"' "$WORK/daemon2.log" \
    || die "structured job-admitted log missing (daemon2.log)"
echo "serve_e2e: request-id correlation and structured logs verified"

# --- Phase 3: uninterrupted reference run, byte-compare ------------------
mkdir -p "$WORK/ckpt-ref"
ADDR=$(start_daemon "$WORK/ckpt-ref" "$WORK/daemon3.log" "$WORK/daemon3.pid")
REF_ID=$(job_id "$(submit "$ADDR")")
await_result "$ADDR" "$REF_ID" "$WORK/reference.bin"

cmp "$WORK/resumed.bin" "$WORK/reference.bin" \
    || die "resumed result differs from uninterrupted run"
echo "serve_e2e: resumed result byte-identical ($RESUMED points skipped)"

# --- Phase 4: telemetry under load ---------------------------------------
# The reference daemon runs with the default sampler (1s resolution) and
# built-in SLO rules; a short gentle ccmload run must pass its own gates:
# p99 bound, no firing alerts, and non-empty serve/sim/runtime series on
# /api/v1/timeseries.
"$WORK/ccmload" -addr "$ADDR" -rps 2 -duration 5s -drain 30s \
    -large-ratio 0 -max-p99 30s -fail-on-alerts \
    -check-series serve_queue_len,serve_jobs_executed_total,sim_sessions_total,runtime_goroutines \
    || die "ccmload telemetry gates failed (exit $?)"
echo "serve_e2e: PASS (telemetry live under load, no SLO violations)"

package netags

import (
	"fmt"

	"netags/internal/core"
	"netags/internal/energy"
	"netags/internal/geom"
	"netags/internal/obs"
	"netags/internal/topology"
)

// Position is a location in the deployment plane, in meters.
type Position struct {
	X, Y float64
}

// SystemOptions describes a networked tag system to simulate. The zero
// value of every field except Tags has a sensible default drawn from the
// paper's evaluation setting (§VI-A).
type SystemOptions struct {
	// Tags is the number of deployed tags (required).
	Tags int
	// Radius is the deployment disk radius in meters (default 30).
	Radius float64
	// ReaderRange is the reader→tag broadcast range R (default 30).
	ReaderRange float64
	// TagToReaderRange is the tag→reader range r' (default 20).
	TagToReaderRange float64
	// InterTagRange is the tag↔tag range r (default 6; the paper sweeps
	// 2–10).
	InterTagRange float64
	// Readers places the readers; empty means one reader at the origin.
	Readers []Position
	// Clusters groups the tags into this many Gaussian clusters instead of
	// the paper's uniform placement (0 = uniform). Real inventories are
	// clustered — pallets, shelving bays — and every protocol runs on them
	// unchanged. Clustered layouts support a single reader at the origin.
	Clusters int
	// ClusterSpread is the Gaussian standard deviation of each cluster in
	// meters (default Radius/6). Only used when Clusters > 0.
	ClusterSpread float64
	// Seed determines the deployment (tag positions) deterministically.
	Seed uint64
	// IDs assigns tag identifiers; nil means sequential IDs starting at 1.
	IDs []uint64
	// Walls are obstacle segments that block the weak tag-originated links
	// (tag↔tag and tag→reader). The reader's high-power broadcast
	// penetrates them — the paper's motivating scenario of coverage holes
	// that multi-hop relaying routes around.
	Walls []Wall
	// CheckingFrameLen overrides the checking-frame length L_c, which also
	// bounds the rounds per session (Algorithm 1 line 3). The default is
	// the paper's empirical 2·(1 + ⌈(R−r')/r⌉), derived from open-floor
	// geometry; deployments with obstacles have detour paths deeper than
	// that estimate and must size it up, or sessions truncate (results
	// carry a Truncated flag when that happens).
	CheckingFrameLen int
}

// Wall is an obstacle segment in the deployment plane.
type Wall struct {
	From, To Position
}

func (o *SystemOptions) setDefaults() {
	if o.Radius == 0 {
		o.Radius = 30
	}
	if o.ReaderRange == 0 {
		o.ReaderRange = 30
	}
	if o.TagToReaderRange == 0 {
		o.TagToReaderRange = 20
	}
	if o.InterTagRange == 0 {
		o.InterTagRange = 6
	}
}

// System is a simulated deployment of networked tags around one or more
// readers, ready to run system-level operations. Create one with NewSystem;
// a System is immutable and safe to reuse across operations.
type System struct {
	deployment  *geom.Deployment
	ranges      topology.Ranges
	obstacles   []geom.Segment
	checkingLen int
	networks    []*topology.Network // one per reader
	ids         []uint64
	idIndex     map[uint64]int
	reachable   int
	tracer      obs.Tracer
}

// NewSystem samples a deployment and derives its network structure.
func NewSystem(opts SystemOptions) (*System, error) {
	if opts.Tags < 0 {
		return nil, fmt.Errorf("netags: negative tag count %d", opts.Tags)
	}
	opts.setDefaults()
	if opts.IDs != nil && len(opts.IDs) != opts.Tags {
		return nil, fmt.Errorf("netags: %d IDs for %d tags", len(opts.IDs), opts.Tags)
	}
	readers := []geom.Point{{}}
	if len(opts.Readers) > 0 {
		readers = make([]geom.Point, len(opts.Readers))
		for i, p := range opts.Readers {
			readers[i] = geom.Point{X: p.X, Y: p.Y}
		}
	}
	var d *geom.Deployment
	if opts.Clusters > 0 {
		if len(opts.Readers) > 0 {
			return nil, fmt.Errorf("netags: clustered layouts support only the default centered reader")
		}
		d = geom.NewClusteredDisk(opts.Tags, opts.Radius, opts.Clusters, opts.ClusterSpread, opts.Seed)
	} else {
		d = geom.NewUniformDiskMultiReader(opts.Tags, opts.Radius, readers, opts.Seed)
	}
	rg := topology.Ranges{
		ReaderToTag: opts.ReaderRange,
		TagToReader: opts.TagToReaderRange,
		TagToTag:    opts.InterTagRange,
	}
	obstacles := make([]geom.Segment, len(opts.Walls))
	for i, w := range opts.Walls {
		obstacles[i] = geom.Segment{
			A: geom.Point{X: w.From.X, Y: w.From.Y},
			B: geom.Point{X: w.To.X, Y: w.To.Y},
		}
	}
	if opts.CheckingFrameLen < 0 {
		return nil, fmt.Errorf("netags: negative checking-frame length %d", opts.CheckingFrameLen)
	}
	s, err := newSystem(d, rg, obstacles, opts.IDs)
	if err != nil {
		return nil, err
	}
	s.checkingLen = opts.CheckingFrameLen
	return s, nil
}

func newSystem(d *geom.Deployment, rg topology.Ranges, obstacles []geom.Segment, ids []uint64) (*System, error) {
	s := &System{deployment: d, ranges: rg, obstacles: obstacles}
	for ri := range d.Readers {
		nw, err := topology.BuildObstructed(d, ri, rg, obstacles)
		if err != nil {
			return nil, fmt.Errorf("netags: reader %d: %w", ri, err)
		}
		s.networks = append(s.networks, nw)
	}
	if ids == nil {
		ids = make([]uint64, d.N())
		for i := range ids {
			ids[i] = uint64(i) + 1
		}
	} else {
		ids = append([]uint64(nil), ids...)
	}
	s.ids = ids
	s.idIndex = make(map[uint64]int, len(ids))
	for i, id := range ids {
		if _, dup := s.idIndex[id]; dup {
			return nil, fmt.Errorf("netags: duplicate tag ID %d", id)
		}
		s.idIndex[id] = i
	}
	for i := 0; i < d.N(); i++ {
		if s.inSystem(i) {
			s.reachable++
		}
	}
	return s, nil
}

// inSystem reports whether deployment tag i can reach at least one reader.
func (s *System) inSystem(i int) bool {
	for _, nw := range s.networks {
		if nw.Tier[i] > 0 {
			return true
		}
	}
	return false
}

// TagCount returns the number of deployed tags.
func (s *System) TagCount() int { return s.deployment.N() }

// Reachable returns the number of tags that can reach at least one reader —
// the population the paper calls "in the system".
func (s *System) Reachable() int { return s.reachable }

// Readers returns the number of readers.
func (s *System) Readers() int { return len(s.networks) }

// Tiers returns the tier count K of the reader with the deepest network
// (for a single reader, exactly the paper's K).
func (s *System) Tiers() int {
	k := 0
	for _, nw := range s.networks {
		if nw.K > k {
			k = nw.K
		}
	}
	return k
}

// Density returns tags per square meter over the deployment disk.
func (s *System) Density() float64 { return s.deployment.Density() }

// IDs returns the identifiers of all deployed tags (a copy).
func (s *System) IDs() []uint64 {
	return append([]uint64(nil), s.ids...)
}

// ReachableIDs returns the identifiers of in-system tags (a copy).
func (s *System) ReachableIDs() []uint64 {
	out := make([]uint64, 0, s.reachable)
	for i, id := range s.ids {
		if s.inSystem(i) {
			out = append(out, id)
		}
	}
	return out
}

// RemoveTags returns a copy of the system with the given tag IDs physically
// removed — the way missing-tag experiments model theft or loss. Unknown
// IDs are reported as an error.
func (s *System) RemoveTags(ids []uint64) (*System, error) {
	indices := make([]int, 0, len(ids))
	for _, id := range ids {
		i, ok := s.idIndex[id]
		if !ok {
			return nil, fmt.Errorf("netags: unknown tag ID %d", id)
		}
		indices = append(indices, i)
	}
	nd, orig := s.deployment.Remove(indices)
	newIDs := make([]uint64, nd.N())
	for newIdx, oldIdx := range orig {
		newIDs[newIdx] = s.ids[oldIdx]
	}
	ns, err := newSystem(nd, s.ranges, s.obstacles, newIDs)
	if err != nil {
		return nil, err
	}
	ns.checkingLen = s.checkingLen
	return ns, nil
}

// WithTracer returns a copy of the system that feeds the structured event
// stream of every subsequent operation to t (see internal/obs for event
// kinds and concrete tracers). Tracers are observe-only: the simulation's
// results are bit-identical with or without one. A nil t returns a copy
// with tracing off. The tracer does not survive RemoveTags (that models a
// physically different deployment); re-attach if needed.
func (s *System) WithTracer(t obs.Tracer) *System {
	ns := *s
	ns.tracer = t
	return &ns
}

// DirectCoverage returns the number of tags a traditional one-hop RFID
// system would reach: within tag→reader range of a reader with a clear line
// of sight. The gap between this and Reachable is what multi-hop relaying
// buys.
func (s *System) DirectCoverage() int {
	count := 0
	for i := 0; i < s.deployment.N(); i++ {
		for _, nw := range s.networks {
			if nw.Tier[i] == 1 {
				count++
				break
			}
		}
	}
	return count
}

// runSession executes one CCM session across all readers (round-robin for
// multiple readers, per §III-G) and returns the OR-combined result.
func (s *System) runSession(cfg core.Config) (*core.Result, error) {
	cfg.IDs = s.ids
	if cfg.CheckingFrameLen == 0 {
		cfg.CheckingFrameLen = s.checkingLen
	}
	if cfg.Tracer == nil {
		cfg.Tracer = s.tracer
	}
	if len(s.networks) == 1 {
		return core.RunSession(s.networks[0], cfg)
	}
	combined := &core.Result{Meter: energy.NewMeter(s.deployment.N())}
	for ri, nw := range s.networks {
		rcfg := cfg
		rcfg.Reader = ri
		res, err := core.RunSession(nw, rcfg)
		if err != nil {
			return nil, fmt.Errorf("netags: reader %d: %w", ri, err)
		}
		if combined.Bitmap == nil {
			combined.Bitmap = res.Bitmap.Clone()
		} else {
			combined.Bitmap.Or(res.Bitmap)
		}
		combined.Clock.Add(res.Clock)
		if err := combined.Meter.Merge(res.Meter); err != nil {
			return nil, fmt.Errorf("netags: reader %d: %w", ri, err)
		}
		if res.Rounds > combined.Rounds {
			combined.Rounds = res.Rounds
		}
		combined.Truncated = combined.Truncated || res.Truncated
		if t := cfg.Tracer; t != nil {
			t.Trace(obs.Event{
				Kind:      obs.KindReaderMerge,
				Protocol:  obs.ProtoCCM,
				Reader:    ri,
				Count:     res.Bitmap.Count(),
				KnownBusy: combined.Bitmap.Count(),
				Rounds:    res.Rounds,
			})
		}
	}
	return combined, nil
}

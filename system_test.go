package netags

import (
	"math"
	"testing"
)

func testSystem(t *testing.T, n int, r float64, seed uint64) *System {
	t.Helper()
	sys, err := NewSystem(SystemOptions{Tags: n, InterTagRange: r, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestNewSystemDefaults(t *testing.T) {
	sys := testSystem(t, 1000, 6, 1)
	if sys.TagCount() != 1000 {
		t.Fatalf("TagCount = %d, want 1000", sys.TagCount())
	}
	if sys.Readers() != 1 {
		t.Fatalf("Readers = %d, want 1", sys.Readers())
	}
	if sys.Reachable() == 0 || sys.Reachable() > 1000 {
		t.Fatalf("Reachable = %d out of range", sys.Reachable())
	}
	if sys.Tiers() < 2 {
		t.Fatalf("Tiers = %d, want >= 2 for r=6", sys.Tiers())
	}
	if sys.Density() <= 0 {
		t.Fatal("Density must be positive")
	}
	if got := len(sys.IDs()); got != 1000 {
		t.Fatalf("IDs = %d entries, want 1000", got)
	}
	if got := len(sys.ReachableIDs()); got != sys.Reachable() {
		t.Fatalf("ReachableIDs = %d, want %d", got, sys.Reachable())
	}
}

func TestNewSystemValidation(t *testing.T) {
	if _, err := NewSystem(SystemOptions{Tags: -1}); err == nil {
		t.Error("negative tag count accepted")
	}
	if _, err := NewSystem(SystemOptions{Tags: 5, IDs: []uint64{1, 2}}); err == nil {
		t.Error("ID length mismatch accepted")
	}
	if _, err := NewSystem(SystemOptions{Tags: 2, IDs: []uint64{7, 7}}); err == nil {
		t.Error("duplicate IDs accepted")
	}
	if _, err := NewSystem(SystemOptions{Tags: 5, ReaderRange: 10, TagToReaderRange: 20}); err == nil {
		t.Error("inverted ranges accepted")
	}
}

func TestEstimateCardinality(t *testing.T) {
	sys := testSystem(t, 2000, 6, 2)
	res, err := sys.EstimateCardinality(EstimateOptions{Beta: 0.1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(sys.Reachable())
	if math.Abs(res.Estimate-n) > 0.15*n {
		t.Fatalf("estimate %.0f, true %d", res.Estimate, sys.Reachable())
	}
	if !res.Converged {
		t.Error("estimation did not converge")
	}
	if res.Cost.Slots <= 0 || res.Cost.AvgBitsReceived <= 0 {
		t.Errorf("cost not populated: %+v", res.Cost)
	}
	if res.Cost.MaxBitsSent < int64(res.Cost.AvgBitsSent) {
		t.Error("max sent below avg sent")
	}
}

func TestDetectMissingEndToEnd(t *testing.T) {
	sys := testSystem(t, 1500, 6, 4)
	inventory := sys.ReachableIDs()

	// Nothing missing: no detection across seeds.
	for seed := uint64(0); seed < 3; seed++ {
		res, err := sys.DetectMissing(inventory, DetectOptions{Seed: seed})
		if err != nil {
			t.Fatal(err)
		}
		if res.Missing {
			t.Fatalf("seed %d: false positive", seed)
		}
	}

	// Remove 40 tags: detection should fire (tolerance defaults to ~7).
	depleted, err := sys.RemoveTags(inventory[:40])
	if err != nil {
		t.Fatal(err)
	}
	res, err := depleted.DetectMissing(inventory, DetectOptions{Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Missing {
		t.Fatal("40 missing tags not detected")
	}
	removed := make(map[uint64]bool)
	for _, id := range inventory[:40] {
		removed[id] = true
	}
	stillThere := make(map[uint64]bool)
	for _, id := range depleted.ReachableIDs() {
		stillThere[id] = true
	}
	for _, sID := range res.Suspects {
		if stillThere[sID] {
			t.Fatalf("suspect %d is reachable and present", sID)
		}
	}
}

func TestDetectMissingEmptyInventory(t *testing.T) {
	sys := testSystem(t, 100, 6, 5)
	if _, err := sys.DetectMissing(nil, DetectOptions{}); err == nil {
		t.Fatal("empty inventory accepted")
	}
}

func TestSearchTags(t *testing.T) {
	sys := testSystem(t, 1000, 6, 6)
	present := sys.ReachableIDs()[:20]
	absent := []uint64{900001, 900002, 900003}
	res, err := sys.SearchTags(append(append([]uint64{}, present...), absent...), SearchOptions{Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	found := make(map[uint64]bool)
	for _, id := range res.Found {
		found[id] = true
	}
	for _, id := range present {
		if !found[id] {
			t.Fatalf("present tag %d not found", id)
		}
	}
	if len(res.Found)+len(res.Absent) != 23 {
		t.Fatalf("found+absent = %d, want 23", len(res.Found)+len(res.Absent))
	}
	if res.ExpectedFalsePositiveRate > 0.06 {
		t.Errorf("derived frame gives FP %v > target", res.ExpectedFalsePositiveRate)
	}
}

func TestCollectIDs(t *testing.T) {
	sys := testSystem(t, 800, 6, 8)
	res, err := sys.CollectIDs(CollectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.IDs) != sys.Reachable() {
		t.Fatalf("collected %d IDs, want %d", len(res.IDs), sys.Reachable())
	}
	if res.Cost.Slots <= 0 || res.TreeDepth < sys.Tiers() {
		t.Fatalf("bad cost/depth: %+v depth=%d", res.Cost, res.TreeDepth)
	}
	// CICP variant also collects everything.
	cres, err := sys.CollectIDs(CollectOptions{Seed: 1, Contention: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(cres.IDs) != sys.Reachable() {
		t.Fatalf("CICP collected %d IDs, want %d", len(cres.IDs), sys.Reachable())
	}
}

func TestCollectBitmapAndHeadlineClaim(t *testing.T) {
	// The paper's headline: CCM beats ID collection by an order of
	// magnitude on time and energy. Verify on the facade with a dense
	// system.
	sys := testSystem(t, 2000, 6, 9)
	bm, err := sys.CollectBitmap(SessionOptions{FrameSize: 512, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bm.Truncated || bm.Rounds == 0 || len(bm.BusySlots) == 0 {
		t.Fatalf("bad session: %+v", bm)
	}
	col, err := sys.CollectIDs(CollectOptions{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if bm.Cost.Slots*5 > col.Cost.Slots {
		t.Errorf("CCM %d slots not well below SICP %d", bm.Cost.Slots, col.Cost.Slots)
	}
	if bm.Cost.AvgBitsReceived*2 > col.Cost.AvgBitsReceived {
		t.Errorf("CCM avg received %.0f not well below SICP %.0f",
			bm.Cost.AvgBitsReceived, col.Cost.AvgBitsReceived)
	}
}

func TestCollectBitmapValidation(t *testing.T) {
	sys := testSystem(t, 50, 6, 10)
	if _, err := sys.CollectBitmap(SessionOptions{}); err == nil {
		t.Fatal("zero frame size accepted")
	}
}

func TestMultiReaderSystem(t *testing.T) {
	// Two distant readers: union coverage exceeds either alone.
	sys, err := NewSystem(SystemOptions{
		Tags:          1500,
		Radius:        60,
		InterTagRange: 5,
		Readers:       []Position{{X: -30}, {X: 30}},
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Readers() != 2 {
		t.Fatalf("Readers = %d, want 2", sys.Readers())
	}
	single, err := NewSystem(SystemOptions{
		Tags:          1500,
		Radius:        60,
		InterTagRange: 5,
		Readers:       []Position{{X: -30}},
		Seed:          11,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Reachable() <= single.Reachable() {
		t.Fatalf("two readers reach %d <= one reader's %d", sys.Reachable(), single.Reachable())
	}
	// Operations work across readers.
	res, err := sys.EstimateCardinality(EstimateOptions{Beta: 0.15, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	n := float64(sys.Reachable())
	if math.Abs(res.Estimate-n) > 0.25*n {
		t.Fatalf("multi-reader estimate %.0f, true %d", res.Estimate, sys.Reachable())
	}
	col, err := sys.CollectIDs(CollectOptions{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.IDs) != sys.Reachable() {
		t.Fatalf("multi-reader collected %d, want %d", len(col.IDs), sys.Reachable())
	}
}

func TestRemoveTagsErrors(t *testing.T) {
	sys := testSystem(t, 100, 6, 12)
	if _, err := sys.RemoveTags([]uint64{999999}); err == nil {
		t.Fatal("unknown ID accepted")
	}
	depleted, err := sys.RemoveTags(sys.IDs()[:10])
	if err != nil {
		t.Fatal(err)
	}
	if depleted.TagCount() != 90 {
		t.Fatalf("TagCount after removal = %d, want 90", depleted.TagCount())
	}
	if sys.TagCount() != 100 {
		t.Fatal("RemoveTags mutated the original system")
	}
}

func TestLossyOperations(t *testing.T) {
	sys := testSystem(t, 800, 6, 13)
	inventory := sys.ReachableIDs()
	// With heavy loss and nothing missing, TRP can now produce false
	// positives — that is the point of the extension.
	res, err := sys.DetectMissing(inventory, DetectOptions{Seed: 2, LossProb: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	_ = res // any outcome is legal; the call must simply work
}

func TestEstimateLoFMethod(t *testing.T) {
	sys := testSystem(t, 2000, 6, 21)
	res, err := sys.EstimateCardinality(EstimateOptions{Method: EstimateLoF, Seed: 4, MaxFrames: 48})
	if err != nil {
		t.Fatal(err)
	}
	truth := float64(sys.Reachable())
	if res.Estimate < truth/2 || res.Estimate > truth*2 {
		t.Fatalf("LoF estimate %.0f outside 2x band of %d", res.Estimate, sys.Reachable())
	}
	if !math.IsInf(res.RelHalfWidth, 1) {
		t.Error("LoF should not claim a confidence interval")
	}
	// The LoF sketch must be far cheaper in air time than GMLE.
	g, err := sys.EstimateCardinality(EstimateOptions{Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost.Slots*2 > g.Cost.Slots {
		t.Errorf("LoF %d slots not well below GMLE %d", res.Cost.Slots, g.Cost.Slots)
	}
}

func TestIdentifyMissingFacade(t *testing.T) {
	sys := testSystem(t, 800, 6, 22)
	inventory := sys.ReachableIDs()
	depleted, err := sys.RemoveTags(inventory[:25])
	if err != nil {
		t.Fatal(err)
	}
	res, err := depleted.IdentifyMissing(inventory, IdentifyOptions{Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Complete {
		t.Fatalf("incomplete: %d undetermined", len(res.Undetermined))
	}
	removed := map[uint64]bool{}
	for _, id := range inventory[:25] {
		removed[id] = true
	}
	foundRemoved := 0
	for _, id := range res.Absent {
		if removed[id] {
			foundRemoved++
		}
	}
	if foundRemoved != 25 {
		t.Fatalf("identified %d/25 removed tags as absent", foundRemoved)
	}
	stillThere := map[uint64]bool{}
	for _, id := range depleted.ReachableIDs() {
		stillThere[id] = true
	}
	for _, id := range res.Present {
		if !stillThere[id] {
			t.Fatalf("id %d declared present but is not reachable", id)
		}
	}
}

func TestIdentifyMissingErrors(t *testing.T) {
	sys := testSystem(t, 100, 6, 23)
	if _, err := sys.IdentifyMissing(nil, IdentifyOptions{}); err == nil {
		t.Error("empty inventory accepted")
	}
	multi, err := NewSystem(SystemOptions{Tags: 100, Readers: []Position{{X: -5}, {X: 5}}, Seed: 23})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := multi.IdentifyMissing(multi.ReachableIDs(), IdentifyOptions{}); err == nil {
		t.Error("multi-reader identification should be rejected")
	}
}

func TestWallsBlockDirectCoverage(t *testing.T) {
	opts := SystemOptions{Tags: 2000, InterTagRange: 6, Seed: 33}
	open, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Walls = []Wall{{From: Position{X: 5, Y: -15}, To: Position{X: 5, Y: 15}}}
	walled, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	if walled.DirectCoverage() >= open.DirectCoverage() {
		t.Fatalf("wall did not reduce direct coverage: %d vs %d",
			walled.DirectCoverage(), open.DirectCoverage())
	}
	if walled.Reachable() < open.Reachable()*95/100 {
		t.Fatalf("relaying recovered only %d of %d tags", walled.Reachable(), open.Reachable())
	}
	if walled.Tiers() <= open.Tiers() {
		t.Fatalf("detours should deepen the network: %d vs %d tiers",
			walled.Tiers(), open.Tiers())
	}
}

func TestCheckingFrameLenOverride(t *testing.T) {
	// A deep walled network truncates with the default L_c and recovers
	// with an explicit one.
	opts := SystemOptions{
		Tags:          2000,
		InterTagRange: 4,
		Seed:          34,
		Walls: []Wall{
			{From: Position{X: 4, Y: -20}, To: Position{X: 4, Y: 20}},
			{From: Position{X: -8, Y: -20}, To: Position{X: -8, Y: 18}},
		},
	}
	deep, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	def, err := deep.CollectBitmap(SessionOptions{FrameSize: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	opts.CheckingFrameLen = 6 * deep.Tiers()
	tuned, err := NewSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := tuned.CollectBitmap(SessionOptions{FrameSize: 256, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	if fixed.Truncated {
		t.Fatal("tuned checking frame still truncates")
	}
	if def.Truncated && len(fixed.BusySlots) < len(def.BusySlots) {
		t.Fatal("tuned session collected fewer bits than the truncated one")
	}
	if _, err := NewSystem(SystemOptions{Tags: 10, CheckingFrameLen: -1}); err == nil {
		t.Fatal("negative checking-frame length accepted")
	}
}

func TestClusteredSystem(t *testing.T) {
	sys, err := NewSystem(SystemOptions{
		Tags:          2000,
		InterTagRange: 6,
		Clusters:      6,
		ClusterSpread: 4,
		Seed:          44,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sys.Reachable() == 0 {
		t.Fatal("no reachable tags in clustered layout")
	}
	// Every protocol still behaves: no false detection with nothing
	// missing (Theorem 1 holds on any topology)…
	inventory := sys.ReachableIDs()
	det, err := sys.DetectMissing(inventory, DetectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if det.Missing && !det.Truncated {
		t.Fatal("false positive on clustered layout")
	}
	// …and SICP still collects everything reachable.
	col, err := sys.CollectIDs(CollectOptions{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(col.IDs) != sys.Reachable() {
		t.Fatalf("collected %d of %d on clustered layout", len(col.IDs), sys.Reachable())
	}
}

func TestClusteredRejectsCustomReaders(t *testing.T) {
	_, err := NewSystem(SystemOptions{Tags: 10, Clusters: 2, Readers: []Position{{X: 1}}})
	if err == nil {
		t.Fatal("clustered layout with custom readers accepted")
	}
}

func TestDetectMissingRepeatedExecutions(t *testing.T) {
	sys := testSystem(t, 1000, 6, 66)
	inventory := sys.ReachableIDs()
	res, err := sys.DetectMissing(inventory, DetectOptions{Seed: 1, Executions: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Missing {
		t.Fatal("false positive")
	}
	if res.Executions != 3 {
		t.Fatalf("executions = %d, want all 3 when nothing is missing", res.Executions)
	}
	// With removals, repetition stops at the first hit.
	depleted, err := sys.RemoveTags(inventory[:30])
	if err != nil {
		t.Fatal(err)
	}
	res, err = depleted.DetectMissing(inventory, DetectOptions{Seed: 1, Executions: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Missing {
		t.Fatal("missing tags undetected across 5 executions")
	}
	if res.Executions < 1 || res.Executions > 5 {
		t.Fatalf("executions = %d", res.Executions)
	}
	if _, err := depleted.DetectMissing(inventory, DetectOptions{Executions: -1}); err == nil {
		t.Fatal("negative executions accepted")
	}
}
